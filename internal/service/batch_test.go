package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJSON(client *http.Client, url, body string) (*http.Response, []byte, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b, err
}

func postBatch(t *testing.T, client *http.Client, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, b, err := postJSON(client, url+"/v1/compile/batch", body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestBatchDedupAndResults(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Five entries, three distinct: fir2dim twice (and once with the
	// default machine spelled out, which canonicalizes identically).
	body := `{"entries":[
		{"kernel":"fir2dim"},
		{"kernel":"idcthor"},
		{"kernel":"fir2dim"},
		{"kernel":"fir2dim","machine":{"type":"dspfabric","n":8,"m":8,"k":8}},
		{"kernel":"mpeg2inter"}
	]}`
	resp, b := postBatch(t, ts.Client(), ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var br BatchResponse
	if err := json.Unmarshal(b, &br); err != nil {
		t.Fatal(err)
	}
	if br.Unique != 3 || br.Deduped != 2 {
		t.Fatalf("unique %d deduped %d, want 3/2", br.Unique, br.Deduped)
	}
	if len(br.Entries) != 5 {
		t.Fatalf("%d entries", len(br.Entries))
	}
	for i, e := range br.Entries {
		if e.State != StateDone || len(e.Result) == 0 || e.Error != "" {
			t.Fatalf("entry %d: %+v", i, e)
		}
	}
	// Deduped entries share the first sibling's job and bytes.
	for _, i := range []int{2, 3} {
		if !br.Entries[i].Deduped {
			t.Errorf("entry %d not marked deduped", i)
		}
		if br.Entries[i].JobID != br.Entries[0].JobID {
			t.Errorf("entry %d job %s, want %s", i, br.Entries[i].JobID, br.Entries[0].JobID)
		}
		if string(br.Entries[i].Result) != string(br.Entries[0].Result) {
			t.Errorf("entry %d bytes differ from first sibling", i)
		}
	}
	// The service compiled each distinct configuration exactly once.
	m := svc.Metrics()
	if m.Requests != 3 || m.CacheMisses != 3 {
		t.Fatalf("metrics after batch: %+v", m)
	}
	if m.BatchEntries != 5 || m.BatchDeduped != 2 {
		t.Fatalf("batch counters: %+v", m)
	}
}

func TestBatchAsyncReturnsJobIDs(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, b := postBatch(t, ts.Client(), ts.URL,
		`{"async":true,"entries":[{"kernel":"fir2dim"},{"kernel":"fir2dim"},{"kernel":"idcthor"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var br BatchResponse
	if err := json.Unmarshal(b, &br); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for i, e := range br.Entries {
		if e.JobID == "" {
			t.Fatalf("entry %d has no job ID: %+v", i, e)
		}
		if len(e.Result) != 0 {
			t.Fatalf("async entry %d carries a result", i)
		}
		ids[e.JobID] = true
	}
	if len(ids) != 2 {
		t.Fatalf("%d distinct jobs, want 2 (dedup)", len(ids))
	}
	// Each job is pollable to completion.
	for id := range ids {
		deadline := time.Now().Add(60 * time.Second)
		for {
			job, ok := svc.Job(id)
			if !ok {
				t.Fatalf("job %s unknown", id)
			}
			if job.State() == StateDone {
				break
			}
			if job.State().Terminal() {
				t.Fatalf("job %s ended %s: %s", id, job.State(), job.Err())
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished", id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// One bad entry fails alone; its identical sibling mirrors the error;
// good entries still compile.
func TestBatchPerEntryErrors(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, b := postBatch(t, ts.Client(), ts.URL,
		`{"entries":[{"kernel":"nope"},{"kernel":"fir2dim"},{"kernel":"nope"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var br BatchResponse
	if err := json.Unmarshal(b, &br); err != nil {
		t.Fatal(err)
	}
	if br.Entries[0].Error == "" {
		t.Fatal("bad entry 0 reported no error")
	}
	if br.Entries[1].State != StateDone || br.Entries[1].Error != "" {
		t.Fatalf("good entry: %+v", br.Entries[1])
	}
	// Unkeyable entries cannot be fingerprinted, so duplicates are not
	// deduped — each carries its own (identical) validation error.
	if br.Entries[2].Error != br.Entries[0].Error {
		t.Fatalf("duplicate bad entry error differs: %+v", br.Entries[2])
	}
}

// Batch entries accept the engine option; an unknown engine surfaces
// as a typed per-entry error carrying the "engine" field, and entries
// that differ only by engine are distinct cache identities (never
// deduped onto each other).
func TestBatchEngineOption(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, b := postBatch(t, ts.Client(), ts.URL,
		`{"entries":[
			{"kernel":"fir2dim"},
			{"kernel":"fir2dim","options":{"engine":"see"}},
			{"kernel":"fir2dim","options":{"engine":"portfolio"}},
			{"kernel":"fir2dim","options":{"engine":"annealing"}}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var br BatchResponse
	if err := json.Unmarshal(b, &br); err != nil {
		t.Fatal(err)
	}
	// "" and "see" canonicalize to the same identity; "portfolio" must
	// not be deduped onto them.
	if !br.Entries[1].Deduped {
		t.Errorf(`engine "see" not deduped onto the default-engine sibling: %+v`, br.Entries[1])
	}
	if br.Entries[2].Deduped {
		t.Errorf(`engine "portfolio" wrongly deduped onto a beam entry: %+v`, br.Entries[2])
	}
	if br.Entries[2].State != StateDone || br.Entries[2].Error != "" {
		t.Errorf("portfolio entry: %+v", br.Entries[2])
	}
	if br.Entries[3].Field != "engine" {
		t.Errorf("unknown engine entry field %q, want \"engine\" (%+v)", br.Entries[3].Field, br.Entries[3])
	}
}

// When every unique entry hits backpressure the whole batch is 503 so
// clients back off instead of retrying entry by entry.
func TestBatchQueueFull(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Saturate the worker and the queue with slow synthetic compiles.
	for seed := 0; seed < 2; seed++ {
		body := fmt.Sprintf(`{"entries":[{"synth":{"ops":2500,"seed":%d,"rec_latency":3}}],"async":true}`, 900+seed)
		resp, b := postBatch(t, ts.Client(), ts.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("filler %d: status %d: %s", seed, resp.StatusCode, b)
		}
	}
	resp, b := postBatch(t, ts.Client(), ts.URL,
		`{"entries":[{"synth":{"ops":2500,"seed":999,"rec_latency":3}}],"async":true}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated batch: status %d: %s", resp.StatusCode, b)
	}
	var eb ErrorBody
	if err := json.Unmarshal(b, &eb); err != nil || !strings.Contains(eb.Error, "queue full") {
		t.Fatalf("503 body (%v): %s", err, b)
	}
	svc.Close()
}
