package service

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/machine"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job tracks one compile request through the worker pool. Every field
// behind mu is written by the owning worker and read by any number of
// pollers (GET /v1/jobs/{id}).
type Job struct {
	ID  string
	Key string // content-addressed cache key

	ctx    context.Context
	cancel context.CancelFunc

	req CompileRequest
	d   *ddg.DDG
	mc  *machine.Config
	opt core.Options
	// exp, when set, makes this a design-space exploration job instead of
	// a single compile; req/mc/opt are zero and ignored.
	exp *exploreSpec

	done chan struct{}

	mu       sync.Mutex
	state    State
	cacheHit bool
	result   []byte
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time

	// recovered marks a job replayed from the persistent journal after a
	// restart rather than submitted to this process. Its result, if any,
	// is re-attached lazily from the durable store via loadResult.
	recovered  bool
	loadResult func() ([]byte, bool)
}

// Status is the poller's view of a job (GET /v1/jobs/{id}).
type Status struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error,omitempty"`
	Created  string `json:"created"`
	Finished string `json:"finished,omitempty"`
	// Recovered marks a job whose state was replayed from the journal
	// after a daemon restart.
	Recovered bool `json:"recovered,omitempty"`
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel aborts the job's compile if it is still in flight. Recovered
// jobs are already terminal and have nothing to cancel.
func (j *Job) Cancel() {
	if j.cancel != nil {
		j.cancel()
	}
}

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the compiled report bytes (valid once StateDone) and
// whether they came from the cache. For a job recovered from the journal
// the bytes are fetched from the durable store on first use.
func (j *Job) Result() (body []byte, cacheHit bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil && j.loadResult != nil {
		if b, ok := j.loadResult(); ok {
			j.result = b
		}
		j.loadResult = nil
	}
	return j.result, j.cacheHit
}

// Err returns the failure or cancellation message, if any.
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// Status snapshots the job for the jobs endpoint.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.ID,
		State:     j.state,
		CacheHit:  j.cacheHit,
		Error:     j.errMsg,
		Created:   j.created.UTC().Format(time.RFC3339Nano),
		Recovered: j.recovered,
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *Job) finish(state State, result []byte, cacheHit bool, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.result = result
	j.cacheHit = cacheHit
	j.errMsg = errMsg
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}
