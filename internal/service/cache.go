package service

import (
	"container/list"
	"sync"
)

// lruCache is the content-addressed result cache: cache key (see
// cacheKey) → the exact JSON bytes served for that compile. Entries are
// immutable once stored, so hits can hand out the stored slice directly
// and repeated requests are byte-identical by construction.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached bytes for key and refreshes its recency.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry when
// the cache is full.
func (c *lruCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
