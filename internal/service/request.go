package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/kernels"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/see"
)

// SynthSpec requests a synthetic DDG (internal/kernels.Synthetic).
type SynthSpec struct {
	Ops        int   `json:"ops"`
	Seed       int64 `json:"seed"`
	RecLatency int   `json:"rec_latency"`
}

// MachineSpec selects and parameterizes the target machine. The zero
// value means the paper's best DSPFabric instance (N = M = K = 8).
type MachineSpec struct {
	// Type is "dspfabric" (default), "rcp" or "linear".
	Type string `json:"type,omitempty"`
	// DSPFabric MUX capacities; 8 each when zero.
	N int `json:"n,omitempty"`
	M int `json:"m,omitempty"`
	K int `json:"k,omitempty"`
	// RCP / linear-array shape; 8/2/2 when zero.
	Clusters  int `json:"clusters,omitempty"`
	Neighbors int `json:"neighbors,omitempty"`
	Ports     int `json:"ports,omitempty"`
}

// OptionsSpec tunes the compilation pipeline.
type OptionsSpec struct {
	Beam            int  `json:"beam,omitempty"` // SEE beam width; 8 when zero
	Cand            int  `json:"cand,omitempty"` // SEE candidate width; 4 when zero
	DisableRemat    bool `json:"disable_remat,omitempty"`
	DisableSeeding  bool `json:"disable_seeding,omitempty"`
	SchedulingAware bool `json:"scheduling_aware,omitempty"`
	// DisableDedup turns off the SEE's frontier deduplication (strict
	// reproduction of the reference engine; may change the result).
	DisableDedup bool `json:"disable_dedup,omitempty"`
	// DisableMemo opts this request out of the process-wide subproblem
	// memo (ablation; the result is bit-identical either way).
	DisableMemo bool `json:"disable_memo,omitempty"`
	// Engine selects the subproblem solver: "see" (default), "exact"
	// (branch-and-bound with optimality proofs), or "portfolio" (both
	// raced per subproblem). Unknown names are rejected with HTTP 400.
	Engine string `json:"engine,omitempty"`
	// Schedule additionally runs iterative modulo scheduling on the
	// clusterized result.
	Schedule bool `json:"schedule,omitempty"`
	// Feedback runs the full §5 feedback loop (several heuristic
	// variants raced by achieved II); implies scheduling.
	Feedback bool `json:"feedback,omitempty"`
}

// CompileRequest is the body of POST /v1/compile. Exactly one DDG source
// must be set: Kernel (a named kernel), Synth, or Source (an
// internal/lang kernel description).
type CompileRequest struct {
	Kernel  string      `json:"kernel,omitempty"`
	Synth   *SynthSpec  `json:"synth,omitempty"`
	Source  string      `json:"source,omitempty"`
	Machine MachineSpec `json:"machine,omitempty"`
	Options OptionsSpec `json:"options,omitempty"`
	// TimeoutMs bounds this compile; the service default applies when
	// zero. Not part of the cache key.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Async returns a job ID immediately instead of waiting for the
	// result; poll GET /v1/jobs/{id}. Not part of the cache key.
	Async bool `json:"async,omitempty"`
	// Trace records the compile with a trace.Recorder and folds the
	// telemetry summary into the report. Traced requests bypass the
	// result cache in both directions (a cached body has no trace, and a
	// traced body must not poison the cache for untraced callers). Also
	// settable as ?trace=1 on POST /v1/compile.
	Trace bool `json:"trace,omitempty"`
}

// normalize fills in defaults so that equivalent requests (e.g. beam 0
// vs beam 8) canonicalize — and therefore cache — identically.
func (r *CompileRequest) normalize() {
	if r.Machine.Type == "" {
		r.Machine.Type = "dspfabric"
	}
	switch r.Machine.Type {
	case "dspfabric":
		if r.Machine.N == 0 {
			r.Machine.N = 8
		}
		if r.Machine.M == 0 {
			r.Machine.M = 8
		}
		if r.Machine.K == 0 {
			r.Machine.K = 8
		}
	case "rcp", "linear":
		if r.Machine.Clusters == 0 {
			r.Machine.Clusters = 8
		}
		if r.Machine.Neighbors == 0 {
			r.Machine.Neighbors = 2
		}
		if r.Machine.Ports == 0 {
			r.Machine.Ports = 2
		}
	}
	// Canonicalize the search widths through the see package's own
	// defaulting so "beam 0" and "beam 8" hash — and therefore cache —
	// identically. Negative widths are deliberately left alone here:
	// buildOptions surfaces them as typed see.OptionError values, which
	// the HTTP layer maps to 400.
	if r.Options.Beam >= 0 && r.Options.Cand >= 0 {
		canon := see.Config{BeamWidth: r.Options.Beam, CandWidth: r.Options.Cand}.WithDefaults()
		r.Options.Beam = canon.BeamWidth
		r.Options.Cand = canon.CandWidth
	}
	if r.Options.Feedback {
		r.Options.Schedule = true
	}
	// Canonicalize the engine selection so "" and "see" cache — and
	// shard — identically. Unknown names are left alone: buildOptions
	// surfaces them as typed see.OptionError values → HTTP 400.
	if r.Options.Engine == "" {
		r.Options.Engine = "see"
	}
}

// build normalizes the request and constructs everything the submission
// path needs: the validated DDG, machine model, pipeline options and the
// content-addressed cache key.
func (r *CompileRequest) build() (*ddg.DDG, *machine.Config, core.Options, string, error) {
	r.normalize()
	d, err := r.buildDDG()
	if err != nil {
		return nil, nil, core.Options{}, "", fmt.Errorf("bad request: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, nil, core.Options{}, "", fmt.Errorf("bad request: %w", err)
	}
	mc, err := r.buildMachine()
	if err != nil {
		return nil, nil, core.Options{}, "", fmt.Errorf("bad request: %w", err)
	}
	opt, err := r.buildOptions()
	if err != nil {
		return nil, nil, core.Options{}, "", fmt.Errorf("bad request: %w", err)
	}
	return d, mc, opt, cacheKey(d, mc, r.Options), nil
}

// RequestKey returns req's content-addressed cache key — the fingerprint
// the batch endpoint dedups on and the sharding ring routes on. Delivery
// options (timeout, async, trace) never affect it. req is taken by value
// so the caller's copy is not normalized in place.
func RequestKey(req CompileRequest) (string, error) {
	_, _, _, key, err := req.build()
	return key, err
}

// buildOptions maps the request's option spec onto the core pipeline
// options and validates them centrally; invalid values come back as
// typed errors (see.OptionError) that the HTTP layer reports as 400.
func (r *CompileRequest) buildOptions() (core.Options, error) {
	opt := core.Options{
		SEE:                      see.Config{BeamWidth: r.Options.Beam, CandWidth: r.Options.Cand, DisableDedup: r.Options.DisableDedup},
		DisableRematerialization: r.Options.DisableRemat,
		DisableSeeding:           r.Options.DisableSeeding,
		SchedulingAware:          r.Options.SchedulingAware,
		DisableMemo:              r.Options.DisableMemo,
		Engine:                   r.Options.Engine,
	}
	if err := opt.Validate(); err != nil {
		return core.Options{}, err
	}
	return opt, nil
}

// buildDDG constructs the request's DDG.
func (r *CompileRequest) buildDDG() (*ddg.DDG, error) {
	sources := 0
	if r.Kernel != "" {
		sources++
	}
	if r.Synth != nil {
		sources++
	}
	if r.Source != "" {
		sources++
	}
	if sources != 1 {
		return nil, &see.OptionError{Field: "kernel", Value: sources, Reason: "exactly one of kernel, synth or source must be set"}
	}
	switch {
	case r.Kernel != "":
		k, err := kernels.ByName(r.Kernel)
		if err != nil {
			return nil, err
		}
		return k.Build(), nil
	case r.Synth != nil:
		if r.Synth.Ops < 16 || r.Synth.Ops > 1<<16 {
			return nil, &see.OptionError{Field: "synth.ops", Value: r.Synth.Ops, Reason: "out of range [16, 65536]"}
		}
		return kernels.Synthetic(kernels.SynthConfig{
			Ops: r.Synth.Ops, Seed: r.Synth.Seed, RecLatency: r.Synth.RecLatency,
		}), nil
	default:
		return lang.Compile(r.Source)
	}
}

// buildMachine constructs the request's machine model.
func (r *CompileRequest) buildMachine() (*machine.Config, error) {
	var mc *machine.Config
	switch r.Machine.Type {
	case "dspfabric":
		mc = machine.DSPFabric64(r.Machine.N, r.Machine.M, r.Machine.K)
	case "rcp":
		mc = machine.RCP(r.Machine.Clusters, r.Machine.Neighbors, r.Machine.Ports)
	case "linear":
		mc = machine.LinearArray(r.Machine.Clusters, r.Machine.Neighbors, r.Machine.Ports)
	default:
		return nil, &see.OptionError{Field: "machine.type", Str: r.Machine.Type, Reason: "want dspfabric, rcp or linear"}
	}
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	return mc, nil
}

// timeout returns the effective per-request deadline.
func (r *CompileRequest) timeout(def time.Duration) time.Duration {
	if r.TimeoutMs > 0 {
		return time.Duration(r.TimeoutMs) * time.Millisecond
	}
	return def
}

// cacheKey derives the content-addressed cache key: a SHA-256 over the
// DDG's canonical fingerprint, the machine's full canonical description,
// and every option that changes the result. Delivery options (timeout,
// async) are deliberately excluded.
func cacheKey(d *ddg.DDG, mc *machine.Config, opt OptionsSpec) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ddg:%s\n", d.Fingerprint())
	fmt.Fprintf(&sb, "machine:%s", mc.Name)
	for _, l := range mc.Levels {
		fmt.Fprintf(&sb, "|%d/%d/%d", l.Groups, l.InWires, l.OutWires)
	}
	fmt.Fprintf(&sb, "|cn%d/%d|dma%d/%d/%d|ring%v|lin%v|nb%d|mem%v\n",
		mc.CNInPorts, mc.CNOutPorts,
		mc.DMAPorts, mc.DMAFIFODepth, mc.DMALatency,
		mc.Ring, mc.Linear, mc.RingNeighbors, mc.MemCNs)
	// The engine is part of the key: different engines legitimately
	// return different (all legal) results for the same input, so a
	// relaxed exact result must never be served to a strict-mode beam
	// request from the result cache — the same discriminator rule the
	// subproblem memo's AttemptKey.Engine enforces one layer down.
	fmt.Fprintf(&sb, "opts:b%d|c%d|remat%v|seed%v|sa%v|sched%v|fb%v|dd%v|dm%v|eng%s\n",
		opt.Beam, opt.Cand, opt.DisableRemat, opt.DisableSeeding,
		opt.SchedulingAware, opt.Schedule, opt.Feedback,
		opt.DisableDedup, opt.DisableMemo, opt.Engine)
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}
