package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeTransport routes forwarded requests to in-process handlers by
// address, counts every dial, and can simulate a dead peer with
// synthetic connection failures — so the dead-peer handling is testable
// without real listeners or wall-clock waits.
type fakeTransport struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
	dead     map[string]bool
	dials    []string // "addr path" per attempted round trip
}

func (ft *fakeTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	ft.mu.Lock()
	addr := r.URL.Host
	ft.dials = append(ft.dials, addr+" "+r.URL.Path)
	dead := ft.dead[addr]
	h := ft.handlers[addr]
	ft.mu.Unlock()
	if dead || h == nil {
		return nil, &net_OpError{addr: addr}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec.Result(), nil
}

func (ft *fakeTransport) dialCount() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return len(ft.dials)
}

func (ft *fakeTransport) lastDial() string {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if len(ft.dials) == 0 {
		return ""
	}
	return ft.dials[len(ft.dials)-1]
}

func (ft *fakeTransport) setDead(addr string, dead bool) {
	ft.mu.Lock()
	ft.dead[addr] = dead
	ft.mu.Unlock()
}

// net_OpError stands in for the *net.OpError a refused dial produces.
type net_OpError struct{ addr string }

func (e *net_OpError) Error() string { return "dial tcp " + e.addr + ": connection refused" }

// TestShardDeadPeerProbeCooldown drives the active-health-probe state
// machine across a two-node fleet with a fake clock: a dead owner costs
// exactly one failed dial, then zero network traffic until the cooldown
// expires, then one probe per cooldown period until it answers again.
func TestShardDeadPeerProbeCooldown(t *testing.T) {
	const (
		addrA = "node-a:8080"
		addrB = "node-b:8080"
	)
	svcA := New(Config{Workers: 2, NodeName: NodeTag(addrA)})
	svcB := New(Config{Workers: 2, NodeName: NodeTag(addrB)})
	defer svcA.Close()
	defer svcB.Close()

	ft := &fakeTransport{
		handlers: map[string]http.Handler{addrB: svcB.Handler()},
		dead:     map[string]bool{},
	}
	const cooldown = time.Minute
	sh := NewShardedHandler(svcA, svcA.Handler(), ShardOptions{
		Self:          addrA,
		Peers:         []string{addrA, addrB},
		Client:        &http.Client{Transport: ft},
		ProbeCooldown: cooldown,
	})
	now := time.Unix(1_700_000_000, 0)
	sh.clock = func() time.Time { return now }

	req, _ := requestOwnedBy(t, sh.Ring(), addrB)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	post := func() *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		hr := httptest.NewRequest(http.MethodPost, "http://"+addrA+"/v1/compile", strings.NewReader(string(body)))
		hr.Header.Set("Content-Type", "application/json")
		sh.ServeHTTP(rec, hr)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		return rec
	}

	// Healthy peer: forwarded, one dial, no probes.
	rec := post()
	if got := rec.Header().Get(ShardHeader); got != NodeTag(addrB) {
		t.Fatalf("healthy forward: shard %q, want %q", got, NodeTag(addrB))
	}
	if n := ft.dialCount(); n != 1 {
		t.Fatalf("healthy forward: %d dials, want 1", n)
	}

	// Kill the peer. The next request pays one failed dial, falls back
	// locally, and marks the peer down.
	ft.setDead(addrB, true)
	rec = post()
	if got := rec.Header().Get(ShardHeader); got != sh.tag {
		t.Fatalf("fallback: shard %q, want local %q", got, sh.tag)
	}
	if n := ft.dialCount(); n != 2 {
		t.Fatalf("first failure: %d dials, want 2", n)
	}

	// Inside the cooldown: every request is served locally with ZERO
	// network traffic — the bug this replaces dialed (and timed out on)
	// the dead peer for every single request.
	now = now.Add(cooldown / 2)
	for i := 0; i < 3; i++ {
		post()
	}
	if n := ft.dialCount(); n != 2 {
		t.Fatalf("inside cooldown: %d dials, want still 2", n)
	}
	if m := svcA.Metrics(); m.PeerProbes != 0 {
		t.Fatalf("inside cooldown: %d probes, want 0", m.PeerProbes)
	}

	// Cooldown expired, peer still dead: exactly one /healthz probe is
	// spent, it fails, and the cooldown re-arms for followers.
	now = now.Add(cooldown)
	post()
	if n := ft.dialCount(); n != 3 {
		t.Fatalf("probe round: %d dials, want 3", n)
	}
	if got := ft.lastDial(); got != addrB+" /healthz" {
		t.Fatalf("probe dialed %q, want %q", got, addrB+" /healthz")
	}
	post()
	if n := ft.dialCount(); n != 3 {
		t.Fatalf("after failed probe: %d dials, want still 3", n)
	}
	if m := svcA.Metrics(); m.PeerProbes != 1 || m.PeerProbeFailures != 1 {
		t.Fatalf("after failed probe: probes=%d failures=%d, want 1/1", m.PeerProbes, m.PeerProbeFailures)
	}

	// Peer revives: the next post-cooldown request probes successfully
	// and forwarding resumes (probe dial + forward dial).
	ft.setDead(addrB, false)
	now = now.Add(cooldown + time.Second)
	rec = post()
	if got := rec.Header().Get(ShardHeader); got != NodeTag(addrB) {
		t.Fatalf("revived: shard %q, want %q", got, NodeTag(addrB))
	}
	if n := ft.dialCount(); n != 5 {
		t.Fatalf("revived: %d dials, want 5 (probe + forward)", n)
	}
	if m := svcA.Metrics(); m.PeerProbes != 2 || m.PeerProbeFailures != 1 {
		t.Fatalf("revived: probes=%d failures=%d, want 2/1", m.PeerProbes, m.PeerProbeFailures)
	}
	// And the peer is fully healthy again: no probe on the next request.
	post()
	if n := ft.dialCount(); n != 6 {
		t.Fatalf("steady state: %d dials, want 6 (forward only)", n)
	}
	// Six locally-served fallbacks along the way: the first failed dial,
	// three cooled-down requests, the failed-probe round and its follower.
	if m := svcA.Metrics(); m.ForwardFallbacks != 6 {
		t.Fatalf("fallbacks = %d, want 6", m.ForwardFallbacks)
	}
}
