package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func timeUnix(sec int64) time.Time { return time.Unix(sec, 0) }

func testKey(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestResultStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("a")
	body := []byte(`{"legal":true}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(key, body); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("get = %q, %v; want %q", got, ok, body)
	}
	// Overwrite is atomic and sticks.
	body2 := []byte(`{"legal":true,"v":2}`)
	if err := s.Put(key, body2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(key); !bytes.Equal(got, body2) {
		t.Fatalf("after overwrite: %q", got)
	}
	st := s.Stats()
	if st.Writes != 2 || st.Hits != 2 || st.Misses != 1 || st.Corrupt != 0 {
		t.Errorf("stats %+v", st)
	}
	if s.Len() != 1 {
		t.Errorf("len %d, want 1", s.Len())
	}
}

func TestResultStoreRejectsBadKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"", "short", "../../etc/passwd",
		testKey("x")[:63] + "G",                // non-hex
		testKey("x")[:32] + "/" + testKey("y"), // separator smuggling
	} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) hit", key)
		}
	}
}

// The crash matrix the durability design promises to survive: a crash
// between write and rename leaves a temp file that reopen sweeps; a
// record corrupted in place (truncation, bit flips, foreign bytes) is
// quarantined on read and never served; committed records are unharmed
// by either.
func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good, bad := testKey("survives"), testKey("corrupted")
	goodBody := []byte(`{"kernel":"fir2dim"}`)
	if err := s.Put(good, goodBody); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(bad, []byte(`{"kernel":"idcthor"}`)); err != nil {
		t.Fatal(err)
	}

	// Crash 1: killed between write and rename — the temp file exists,
	// the key was never committed.
	orphan := filepath.Join(dir, tmpDir, testKey("orphan")+".12345")
	if err := os.WriteFile(orphan, envelope([]byte("half")), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash 2: a committed record truncated in place (torn sector).
	raw, err := os.ReadFile(s.path(bad))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(bad), raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen — the daemon restarting against the same -data-dir.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("crash leftover in tmp/ not swept on reopen")
	}
	if s2.Stats().Swept == 0 {
		t.Error("sweep not counted")
	}
	if got, ok := s2.Get(good); !ok || !bytes.Equal(got, goodBody) {
		t.Errorf("committed record damaged by crash recovery: %q, %v", got, ok)
	}
	if _, ok := s2.Get(bad); ok {
		t.Error("corrupted record served")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt count %d, want 1", st.Corrupt)
	}
	if _, err := os.Stat(s2.path(bad)); !os.IsNotExist(err) {
		t.Error("corrupted record not quarantined")
	}
	// The store heals: recompute and re-put.
	if err := s2.Put(bad, []byte(`{"kernel":"idcthor"}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(bad); !ok {
		t.Error("healed record not served")
	}
}

func TestResultStoreKeysNewestFirst(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 5; i++ {
		key := testKey(fmt.Sprintf("k%d", i))
		if err := s.Put(key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes without sleeping: set them explicitly.
		mt := int64(1000 + i)
		if err := os.Chtimes(s.path(key), timeUnix(mt), timeUnix(mt)); err != nil {
			t.Fatal(err)
		}
		want = append([]string{key}, want...)
	}
	got := s.Keys()
	if len(got) != len(want) {
		t.Fatalf("keys %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys[%d] = %s, want %s (newest first)", i, got[i], want[i])
		}
	}
}

func TestJobStoreReplayAndCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.log")
	j, err := OpenJobs(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	must := func(rec JobRecord) {
		t.Helper()
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	must(JobRecord{ID: "job-000001", Key: testKey("a"), State: "queued", Time: "2026-01-01T00:00:00Z"})
	must(JobRecord{ID: "job-000001", Key: testKey("a"), State: "running", Time: "2026-01-01T00:00:01Z"})
	must(JobRecord{ID: "job-000001", Key: testKey("a"), State: "done", Time: "2026-01-01T00:00:02Z"})
	must(JobRecord{ID: "job-000002", Key: testKey("b"), State: "queued", Time: "2026-01-01T00:00:03Z"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn final line: the append that was in flight when the daemon
	// died.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"job-000003","state":"que`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJobs(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.Recovered()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records: %+v", len(recs), recs)
	}
	if recs[0].ID != "job-000001" || recs[0].State != "done" {
		t.Errorf("job-000001 latest record %+v, want done", recs[0])
	}
	if recs[1].ID != "job-000002" || recs[1].State != "queued" {
		t.Errorf("job-000002 latest record %+v, want queued", recs[1])
	}
	if j2.CorruptLines() != 1 {
		t.Errorf("corrupt lines %d, want 1 (the torn append)", j2.CorruptLines())
	}
	// Compaction rewrote the journal to one line per job.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(raw, []byte("\n")); n != 2 {
		t.Errorf("compacted journal has %d lines, want 2:\n%s", n, raw)
	}
}

func TestJobStoreKeepBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	j, err := OpenJobs(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := j.Append(JobRecord{
			ID: fmt.Sprintf("job-%06d", i), State: "done",
			Time: fmt.Sprintf("2026-01-01T00:00:%02dZ", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	j2, err := OpenJobs(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.Recovered()
	if len(recs) != 3 {
		t.Fatalf("kept %d, want 3", len(recs))
	}
	if recs[0].ID != "job-000008" || recs[2].ID != "job-000010" {
		t.Errorf("kept wrong window: %+v", recs)
	}
}
