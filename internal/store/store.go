// Package store is hcad's durability layer: a content-addressed on-disk
// result store that sits under the service's in-memory LRU, and an
// append-only job journal (jobstore.go) that makes async job state
// survive a crash.
//
// The result store keeps one file per cache key (the service's SHA-256
// request fingerprint) under a two-level fan-out directory, written with
// the classic write-to-temp-then-rename protocol so a reader never
// observes a partial record and a crash at any instant leaves at worst a
// stray temp file, which Open sweeps. Every record carries a checksum
// envelope; a file that fails verification — truncated by the filesystem,
// flipped bits, a foreign file dropped into the tree — is quarantined
// (removed and counted) and reported as a miss, never served.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// resultMagic opens every result file; a file without it is not ours and
// is quarantined rather than parsed.
var resultMagic = []byte("HCARES1\n")

const (
	resultsDir = "results"
	tmpDir     = "tmp"
)

// ResultStore is the durable content-addressed result store. All methods
// are safe for concurrent use; the write path is atomic per key.
type ResultStore struct {
	dir string

	mu      sync.Mutex
	hits    int64
	misses  int64
	writes  int64
	corrupt int64
	swept   int64
}

// ResultStats counts the store's traffic since Open.
type ResultStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Writes  int64 `json:"writes"`
	Corrupt int64 `json:"corrupt"` // records quarantined at read time
	Swept   int64 `json:"swept"`   // crash leftovers removed at Open
}

// Open creates (or reopens) a result store rooted at dir. Reopening is
// the crash-recovery path: temp files abandoned by a crash between write
// and rename are swept, and the committed records are untouched — a
// record either fully exists or does not exist at all.
func Open(dir string) (*ResultStore, error) {
	for _, sub := range []string{resultsDir, tmpDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	s := &ResultStore{dir: dir}
	// Sweep crash leftovers: anything in tmp/ never made it to rename and
	// is by definition unreferenced.
	leftovers, err := os.ReadDir(filepath.Join(dir, tmpDir))
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	for _, e := range leftovers {
		if e.IsDir() {
			continue
		}
		if os.Remove(filepath.Join(dir, tmpDir, e.Name())) == nil {
			s.swept++
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *ResultStore) Dir() string { return s.dir }

// ValidKey reports whether key is a well-formed store key: the service's
// lowercase-hex SHA-256 request fingerprint. Everything else is rejected
// before it can touch the filesystem.
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// path fans keys out over 256 buckets so no single directory grows
// unbounded: results/ab/abcdef....
func (s *ResultStore) path(key string) string {
	return filepath.Join(s.dir, resultsDir, key[:2], key)
}

// envelope frames body for disk: magic, big-endian body length, SHA-256
// of the body, then the body itself. Verification needs no trailing
// state, so a truncated file fails fast on the length check.
func envelope(body []byte) []byte {
	buf := make([]byte, 0, len(resultMagic)+8+sha256.Size+len(body))
	buf = append(buf, resultMagic...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(body)))
	sum := sha256.Sum256(body)
	buf = append(buf, sum[:]...)
	return append(buf, body...)
}

// unseal verifies an on-disk record and returns the body.
func unseal(raw []byte) ([]byte, error) {
	head := len(resultMagic) + 8 + sha256.Size
	if len(raw) < head || !bytes.Equal(raw[:len(resultMagic)], resultMagic) {
		return nil, fmt.Errorf("store: bad record header")
	}
	n := binary.BigEndian.Uint64(raw[len(resultMagic) : len(resultMagic)+8])
	body := raw[head:]
	if uint64(len(body)) != n {
		return nil, fmt.Errorf("store: record truncated: have %d bytes, want %d", len(body), n)
	}
	want := raw[len(resultMagic)+8 : head]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("store: record checksum mismatch")
	}
	return body, nil
}

// Put durably stores body under key. The record is written and fsynced
// to a temp file first and renamed into place only then, so concurrent
// readers and crash recovery both see either the whole record or none
// of it. Re-putting an existing key rewrites it atomically.
func (s *ResultStore) Put(key string, body []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	f, err := os.CreateTemp(filepath.Join(s.dir, tmpDir), key+".*")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if _, err := f.Write(envelope(body)); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	final := s.path(key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	s.mu.Lock()
	s.writes++
	s.mu.Unlock()
	return nil
}

// Get returns the stored body for key. A missing record is a plain miss;
// a record that fails verification is quarantined (removed, counted in
// Stats.Corrupt) and also reported as a miss — the caller recomputes and
// the next Put heals the store.
func (s *ResultStore) Get(key string) ([]byte, bool) {
	if !ValidKey(key) {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	body, err := unseal(raw)
	if err != nil {
		os.Remove(s.path(key))
		s.mu.Lock()
		s.corrupt++
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return body, true
}

// Keys returns every committed key, most recently written first — the
// order the service warms its LRU in.
func (s *ResultStore) Keys() []string {
	type entry struct {
		key string
		mod time.Time
	}
	var entries []entry
	root := filepath.Join(s.dir, resultsDir)
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !ValidKey(d.Name()) {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		entries = append(entries, entry{key: d.Name(), mod: info.ModTime()})
		return nil
	})
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mod.Equal(entries[j].mod) {
			return entries[i].mod.After(entries[j].mod)
		}
		return entries[i].key < entries[j].key
	})
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.key
	}
	return keys
}

// Len counts the committed records.
func (s *ResultStore) Len() int {
	n := 0
	root := filepath.Join(s.dir, resultsDir)
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && ValidKey(d.Name()) {
			n++
		}
		return nil
	})
	return n
}

// Stats snapshots the store's traffic counters.
func (s *ResultStore) Stats() ResultStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ResultStats{Hits: s.hits, Misses: s.misses, Writes: s.writes, Corrupt: s.corrupt, Swept: s.swept}
}
