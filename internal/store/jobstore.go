// Job journal: an append-only JSON-lines log of every job state
// transition, replayed at open so the daemon can answer "what happened
// to job X" across a restart. The log is compacted on open to the
// latest record per job (bounded to the most recent keep jobs), so its
// size is proportional to the retained history, not the daemon's
// lifetime traffic.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// JobRecord is one journaled state transition. The service appends a
// record per transition (queued → running → done/failed/cancelled); only
// the latest record per ID survives compaction.
type JobRecord struct {
	ID       string `json:"id"`
	Key      string `json:"key,omitempty"` // content-addressed result key
	State    string `json:"state"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`
	Time     string `json:"time"` // RFC3339Nano, UTC
}

// JobStore is the journal handle. Append is safe for concurrent use.
type JobStore struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	recovered []JobRecord
	corrupt   int
}

// OpenJobs opens (or creates) the journal at path, replays it, keeps the
// most recent keep jobs (0 means keep everything) and compacts the file
// to their latest records. A torn final line — the crash signature of an
// interrupted append — and any unparseable line are skipped and counted,
// never fatal: losing one transition record must not take the daemon
// down.
func OpenJobs(path string, keep int) (*JobStore, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: open jobs %s: %w", path, err)
	}
	j := &JobStore{path: path}

	latest := make(map[string]JobRecord)
	var order []string // IDs by most recent transition, oldest first
	if raw, err := os.ReadFile(path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(raw))
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec JobRecord
			if err := json.Unmarshal(line, &rec); err != nil || rec.ID == "" {
				j.corrupt++
				continue
			}
			if _, seen := latest[rec.ID]; seen {
				// Re-append at the tail: order tracks recency.
				for i, id := range order {
					if id == rec.ID {
						order = append(order[:i], order[i+1:]...)
						break
					}
				}
			}
			latest[rec.ID] = rec
			order = append(order, rec.ID)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: open jobs %s: %w", path, err)
	}
	if keep > 0 && len(order) > keep {
		order = order[len(order)-keep:]
	}
	for _, id := range order {
		j.recovered = append(j.recovered, latest[id])
	}

	// Compact: rewrite the retained records atomically, then reopen for
	// appending. A crash mid-compaction leaves the old journal intact.
	tmp := path + ".compact"
	var buf []byte
	for _, rec := range j.recovered {
		line, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("store: compact jobs: %w", err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return nil, fmt.Errorf("store: compact jobs: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("store: compact jobs: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open jobs %s: %w", path, err)
	}
	j.f = f
	return j, nil
}

// Recovered returns the latest journaled record per retained job, in
// order of most recent transition (oldest first). The slice is the
// caller's to keep; it is not updated by later Appends.
func (j *JobStore) Recovered() []JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JobRecord, len(j.recovered))
	copy(out, j.recovered)
	return out
}

// CorruptLines counts journal lines dropped during replay.
func (j *JobStore) CorruptLines() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.corrupt
}

// Append journals one transition. Appends are line-atomic with respect
// to replay: a torn write corrupts only its own line.
func (j *JobStore) Append(rec JobRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: append job: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: append job: journal closed")
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("store: append job: %w", err)
	}
	return nil
}

// Sync flushes the journal to stable storage.
func (j *JobStore) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. Further Appends fail.
func (j *JobStore) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
