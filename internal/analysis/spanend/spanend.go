// Package spanend is the repo's lostcancel: every span opened with
// trace.Start must be closed with End on every path out of the
// function, by defer or explicitly. A span that is never ended skews
// the recorder's durations and, under the compile-service telemetry,
// leaks an open interval into every downstream report.
//
// Neutral uses (SetInt/SetStr/SetBool) do not discharge the
// obligation; passing the span anywhere else is treated as an escape
// and trusted to End it.
package spanend

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/pathcheck"
)

var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "every trace.Start span must be Ended on all paths",
	Run:  run,
}

const tracePath = "repro/internal/trace"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

// checkBody analyzes one function body; nested closures are analyzed
// as their own functions (their returns exit the closure, not the
// enclosing function).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkBody(pass, lit.Body)
			return false
		}
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !analysis.IsPkgFunc(pass.Info, call, tracePath, "Start") {
			return true
		}
		spanIdent, ok := as.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if spanIdent.Name == "_" {
			pass.Reportf(spanIdent.Pos(), "span from trace.Start discarded without End; bind it and defer End()")
			return true
		}
		spanObj := pass.Info.Defs[spanIdent]
		if spanObj == nil {
			spanObj = pass.Info.Uses[spanIdent]
		}
		if spanObj == nil {
			return true
		}
		path := pathcheck.Path(body, stmt)
		if path == nil {
			return true
		}
		c := &pathcheck.Checker{
			Settles: func(s ast.Stmt) bool { return ends(pass.Info, s, spanObj) },
			Escapes: func(s ast.Stmt) bool { return escapes(pass.Info, s, spanObj) },
		}
		for _, v := range pathcheck.Check(c, body, path, stmt) {
			where := "function falls off the end"
			if v.AtReturn {
				where = "return reached"
			}
			pass.Reportf(v.Pos, "%s with span %s never Ended; add defer %s.End() after trace.Start", where, spanIdent.Name, spanIdent.Name)
		}
		return true
	})
}

// ends reports `span.End()` on the tracked span object.
func ends(info *types.Info, s ast.Stmt, span types.Object) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == span
}

// neutral uses are attribute setters on the span itself.
var neutralMethods = map[string]bool{"SetInt": true, "SetStr": true, "SetBool": true, "End": true}

// escapes reports any use of the span outside End/Set* method calls.
func escapes(info *types.Info, s ast.Stmt, span types.Object) bool {
	switch s.(type) {
	case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
		return false // compound statements are walked structurally
	}
	escaped := false
	ast.Inspect(s, func(n ast.Node) bool {
		if escaped {
			return false
		}
		// A method call on the span: skip its selector (a sanctioned
		// use) but keep scanning its arguments.
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && neutralMethods[sel.Sel.Name] {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == span {
					for _, arg := range call.Args {
						ast.Inspect(arg, func(m ast.Node) bool {
							if id, ok := m.(*ast.Ident); ok && info.Uses[id] == span {
								escaped = true
							}
							return !escaped
						})
					}
					return false
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == span {
			escaped = true
			return false
		}
		return true
	})
	return escaped
}
