package spanend_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/spanend"
)

func TestSpanEnd(t *testing.T) {
	antest.Run(t, antest.TestData(), spanend.Analyzer, "spanend")
}

func TestSpanEndFires(t *testing.T) {
	antest.MustFire(t, antest.TestData(), spanend.Analyzer, "spanend")
}
