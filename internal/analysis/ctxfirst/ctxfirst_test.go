package ctxfirst_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/ctxfirst"
)

func TestCtxFirst(t *testing.T) {
	td := antest.TestData()
	antest.Run(t, td, ctxfirst.Analyzer,
		"ctxfirst", "ctxfirst/cmd/app", "ctxfirst/examples/demo")
}

func TestCtxFirstFires(t *testing.T) {
	antest.MustFire(t, antest.TestData(), ctxfirst.Analyzer, "ctxfirst")
}
