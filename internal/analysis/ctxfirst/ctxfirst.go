// Package ctxfirst enforces the context-first API contract introduced
// by the telemetry redesign: internal code calls the canonical
// ctx-first entry points directly, never deprecated compatibility
// wrappers, and never mints a root context with
// context.Background()/TODO() outside cmd/ binaries and examples.
// Library code that must outlive its caller's cancellation detaches
// with context.WithoutCancel, which keeps trace recorders and other
// values flowing.
//
// The retired PR-3 wrappers — see.SolveContext, core.HCAContext,
// driver.HCAWithFeedbackContext — were deleted outright when the engine
// registry landed; this analyzer now hard-errors on any *definition*
// bearing one of those names (not just calls), so the wrappers cannot
// quietly come back under the old doc comments.
package ctxfirst

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc: "flag calls to deprecated compatibility wrappers and to " +
		"context.Background/TODO outside cmd and examples",
	Run: run,
}

// exemptRoot reports whether the package is a binary or example, where
// minting a root context is the whole point.
func exemptRoot(path string) bool {
	return strings.HasPrefix(path, "cmd/") ||
		strings.Contains(path, "/cmd/") ||
		strings.Contains(path, "example")
}

// retiredWrappers are the PR-3 compatibility wrappers that were deleted
// when the engine registry landed. Defining a function or method with
// one of these names anywhere in the tree is a hard error.
var retiredWrappers = map[string]bool{
	"SolveContext":           true,
	"HCAContext":             true,
	"HCAWithFeedbackContext": true,
}

func run(pass *analysis.Pass) error {
	exempt := exemptRoot(pass.Pkg.Path())
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if decl, ok := n.(*ast.FuncDecl); ok && retiredWrappers[decl.Name.Name] {
				pass.Reportf(decl.Name.Pos(), "definition of retired compatibility wrapper %s: the ctx-first API replaced it, do not reintroduce it", decl.Name.Name)
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") && !exempt {
				pass.Reportf(call.Pos(), "context.%s in library code: thread the caller's ctx (detach with context.WithoutCancel if needed)", fn.Name())
			}
			if pass.Docs != nil && strings.Contains(pass.Docs.FuncDoc(fn), "Deprecated:") {
				pass.Reportf(call.Pos(), "call to deprecated %s.%s: use the ctx-first API it wraps", fn.Pkg().Name(), fn.Name())
			}
			return true
		})
	}
	return nil
}
