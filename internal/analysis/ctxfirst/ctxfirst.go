// Package ctxfirst enforces the context-first API contract introduced
// by the telemetry redesign: internal code calls the canonical
// ctx-first entry points directly, never the deprecated compatibility
// wrappers (SolveContext, HCAContext, HCAWithFeedbackContext, ...),
// and never mints a root context with context.Background()/TODO()
// outside cmd/ binaries and examples. Library code that must outlive
// its caller's cancellation detaches with context.WithoutCancel, which
// keeps trace recorders and other values flowing.
package ctxfirst

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc: "flag calls to deprecated compatibility wrappers and to " +
		"context.Background/TODO outside cmd and examples",
	Run: run,
}

// exemptRoot reports whether the package is a binary or example, where
// minting a root context is the whole point.
func exemptRoot(path string) bool {
	return strings.HasPrefix(path, "cmd/") ||
		strings.Contains(path, "/cmd/") ||
		strings.Contains(path, "example")
}

func run(pass *analysis.Pass) error {
	exempt := exemptRoot(pass.Pkg.Path())
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") && !exempt {
				pass.Reportf(call.Pos(), "context.%s in library code: thread the caller's ctx (detach with context.WithoutCancel if needed)", fn.Name())
			}
			if pass.Docs != nil && strings.Contains(pass.Docs.FuncDoc(fn), "Deprecated:") {
				pass.Reportf(call.Pos(), "call to deprecated %s.%s: use the ctx-first API it wraps", fn.Pkg().Name(), fn.Name())
			}
			return true
		})
	}
	return nil
}
