// Package analysis is a self-contained micro-framework in the shape of
// golang.org/x/tools/go/analysis, built only on the standard library's
// go/ast, go/parser, go/types and go/importer. The repo's lint suite
// (cmd/hcalint and the analyzers under internal/analysis/...) runs on
// it so the tree's invariants are enforced without any dependency the
// build environment may not have.
//
// The shape mirrors x/tools deliberately: an Analyzer bundles a name,
// a doc string and a Run function; a Pass hands the Run function one
// type-checked package; diagnostics are (position, message) pairs. If
// the module ever vendors x/tools, the analyzers port by swapping the
// import and keeping their Run bodies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// DocSource resolves the doc comment of a function declared in one of
// the loaded source packages (the loader implements it). Analyzers use
// it to detect "Deprecated:" markers across package boundaries.
type DocSource interface {
	FuncDoc(fn *types.Func) string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Docs resolves cross-package doc comments; may be nil when the
	// runner has no loader (then doc-based checks are skipped).
	Docs DocSource

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Run applies every analyzer to pkg and returns the findings sorted by
// position. A nil docs is allowed (doc-dependent checks degrade).
func Run(pkg *Package, analyzers []*Analyzer, docs DocSource) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Docs:     docs,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Callee resolves the *types.Func a call expression invokes (a plain
// function, method value or selector call), or nil for builtins,
// conversions, and calls through function-typed variables.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether the call invokes the function pkgPath.name,
// where pkgPath matches the callee's package path exactly or as a
// "/"-delimited suffix. Suffix matching lets fixture stubs stand in for
// the real packages ("repro/internal/pg" matches both the repo package
// and a testdata stub declared under the same path).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return PathMatches(fn.Pkg().Path(), pkgPath)
}

// PathMatches reports whether path equals want or ends with "/"+want.
func PathMatches(path, want string) bool {
	return path == want || strings.HasSuffix(path, "/"+want)
}

// IsMethodOn reports whether fn is a method named name whose receiver
// is T or *T for a named type typeName declared in a package matching
// pkgPath (suffix semantics as in PathMatches).
func IsMethodOn(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return PathMatches(obj.Pkg().Path(), pkgPath)
}
