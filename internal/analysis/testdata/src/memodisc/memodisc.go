// Package memodisc exercises the engine/memo discipline rules on the
// core stub.
package memodisc

import "repro/internal/core"

const (
	engineSee   = 1
	engineExact = 2
)

// --- rule 1: AttemptKey constructions must set Engine ---

func inlineKeyWithoutEngine(memo core.SubproblemMemo) {
	memo.Observe(core.AttemptKey{DDG: 1, Start: 2}) // want `AttemptKey constructed without Engine`
}

func returnedKeyWithoutEngine(ddg uint64) core.AttemptKey {
	return core.AttemptKey{DDG: ddg} // want `AttemptKey constructed without Engine`
}

func keyUsedBeforeEngine(memo core.SubproblemMemo, ddg uint64) {
	k := core.AttemptKey{DDG: ddg}
	memo.Observe(k) // want `AttemptKey k may be used before Engine is set`
	k.Engine = engineSee
	memo.Observe(k)
}

func keyEngineOnlyOnSomePaths(memo core.SubproblemMemo, ddg uint64, exact bool) {
	k := core.AttemptKey{DDG: ddg}
	if exact {
		k.Engine = engineExact
	}
	memo.Observe(k) // want `AttemptKey k may be used before Engine is set`
}

func keyCopiedBeforeEngine(ddg uint64) core.AttemptKey {
	k := core.AttemptKey{DDG: ddg}
	clone := k // want `AttemptKey k may be used before Engine is set`
	clone.Engine = engineSee
	return clone
}

func engineSetInLiteral(memo core.SubproblemMemo, ddg uint64) {
	memo.Observe(core.AttemptKey{DDG: ddg, Engine: engineSee})
}

func engineSetBeforeUse(memo core.SubproblemMemo, ddg uint64, sched bool) {
	k := core.AttemptKey{DDG: ddg, Start: 3}
	if sched {
		k.Flags |= 1 // mutating other fields is fine while unset
	}
	k.Engine = engineSee
	if k.Engine == engineExact {
		k.Budget = 100
	}
	memo.Observe(k)
}

func engineSetOnAllPaths(memo core.SubproblemMemo, ddg uint64, exact bool) {
	k := core.AttemptKey{DDG: ddg}
	if exact {
		k.Engine = engineExact
	} else {
		k.Engine = engineSee
	}
	memo.Observe(k)
}

func copiesInheritEngine(base core.AttemptKey) (core.AttemptKey, core.AttemptKey) {
	// The raceAttempt idiom: copies of a settled key re-discriminate.
	kSee, kExact := base, base
	kSee.Engine = engineSee
	kExact.Engine = engineExact
	return kSee, kExact
}

// --- rule 2: Complete callers must guard volatile results ---

func completeWithoutVolatileGuard(memo core.SubproblemMemo, k core.AttemptKey, e *core.AttemptEntry) {
	memo.Complete(k, e) // want `memo Complete without checking the volatile marker`
}

func completeWithoutAbandon(memo core.SubproblemMemo, k core.AttemptKey, e *core.AttemptEntry) {
	if e.Volatile {
		return
	}
	memo.Complete(k, e) // want `memo Complete without an Abandon path`
}

func completeWithFullProtocol(memo core.SubproblemMemo, k core.AttemptKey, e *core.AttemptEntry) {
	if e.Volatile {
		memo.Abandon(k, e)
		return
	}
	memo.Complete(k, e)
}

func abandonOnlyIsFine(memo core.SubproblemMemo, k core.AttemptKey, e *core.AttemptEntry) {
	memo.Abandon(k, e)
}
