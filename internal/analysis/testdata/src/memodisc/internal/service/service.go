// Package service stands in for the HTTP service package: its import
// path ends in internal/service, so the OptionsSpec/cacheKey
// fingerprint rule applies here.
package service

import (
	"crypto/sha256"
	"encoding/binary"
)

// OptionsSpec mirrors the request knobs that select a solver
// configuration. Feedback was added without being folded into the
// fingerprint — the seeded bug.
type OptionsSpec struct {
	Beam         int
	Cand         int
	DisableDedup bool
	Engine       string
	Feedback     int // want `OptionsSpec.Feedback does not reach cacheKey`
}

func cacheKey(ddg uint64, opt OptionsSpec) [32]byte {
	var buf [64]byte
	binary.LittleEndian.PutUint64(buf[0:], ddg)
	binary.LittleEndian.PutUint64(buf[8:], uint64(opt.Beam))
	binary.LittleEndian.PutUint64(buf[16:], uint64(opt.Cand))
	if opt.DisableDedup {
		buf[24] = 1
	}
	copy(buf[25:], opt.Engine)
	return sha256.Sum256(buf[:])
}
