// Package flowlife exercises the flow lifecycle lattice on the
// pg.Flow stub: use-after-Release, double-Release, release of escaped
// flows, and the pool-borrow obligation.
package flowlife

import "repro/internal/pg"

type result struct {
	Flow  *pg.Flow
	Score int
}

// --- use after release ---

func useAfterRelease(f *pg.Flow) int {
	f.Release()
	return f.Score() // want `flow f may be used after Release`
}

func useAfterBranchRelease(f *pg.Flow, bad bool) int {
	if bad {
		f.Release()
	}
	return f.Score() // want `flow f may be used after Release`
}

func useAfterReleaseInLoop(f *pg.Flow, n int) {
	for i := 0; i < n; i++ {
		f.Score()   // want `flow f may be used after Release`
		f.Release() // want `flow f may be released twice`
	}
}

func memberUseAfterRelease(r *result) int {
	r.Flow.Release()
	return r.Flow.Score() // want `flow r.Flow may be used after Release`
}

// --- double release ---

func doubleRelease(f *pg.Flow) {
	f.Release()
	f.Release() // want `flow f may be released twice`
}

func doubleReleaseBranch(f *pg.Flow, bad bool) {
	if bad {
		f.Release()
	}
	f.Release() // want `flow f may be released twice`
}

func doubleReleaseLoop(f *pg.Flow, n int) {
	for i := 0; i < n; i++ {
		f.Release() // want `flow f may be released twice`
	}
}

func releaseAfterDefer(f *pg.Flow) {
	defer f.Release()
	f.Score()
	f.Release() // want `flow f may be released twice`
}

// --- release of an escaped flow ---

func releaseStored(f *pg.Flow) *result {
	r := &result{}
	r.Flow = f
	f.Release() // want `flow f escapes before this Release`
	return r
}

func releaseAppended(f *pg.Flow, sink []*pg.Flow) []*pg.Flow {
	sink = append(sink, f)
	f.Release() // want `flow f escapes before this Release`
	return sink
}

func releaseCaptured(f *pg.Flow, run func(func())) {
	run(func() { f.Score() })
	f.Release() // want `flow f escapes before this Release`
}

func releaseSentToGoroutine(f *pg.Flow) {
	go f.Score()
	f.Release() // want `flow f escapes before this Release`
}

// --- pool borrow obligation ---

func borrowLeakEarlyReturn(p *pg.Pool, bad bool) {
	g := p.Get()
	if bad {
		return // want `pool-borrowed flow g is not released or returned to the pool at this return`
	}
	p.Put(g)
}

func borrowLeakFallOff(p *pg.Pool) {
	g := p.Get()
	g.Score()
} // want `pool-borrowed flow g is not released or returned to the pool at function end`

// --- clean patterns the lattice must accept ---

func cleanReleaseThenReturn(f *pg.Flow) {
	f.Release()
}

func cleanReleaseThenRebind(f, other *pg.Flow) int {
	f.Release()
	f = other.Clone()
	return f.Score()
}

func cleanConditionalSwap(f, best *pg.Flow) *pg.Flow {
	// The ladder idiom: release the loser, keep the winner.
	if best != f {
		f.Release()
	}
	f = best
	return f
}

func cleanDeferRelease(f *pg.Flow) int {
	defer f.Release()
	f.Score()
	return f.NumAssigned()
}

func cleanDeferClosureRelease(f *pg.Flow) int {
	defer func() { f.Release() }()
	return f.Score()
}

func cleanPerIterationRebind(fs []*pg.Flow) {
	// The frontier retire loop: each iteration releases its own flow.
	for _, g := range fs {
		g.Release()
	}
}

func cleanBranchReleaseThenReturn(f *pg.Flow, bad bool) int {
	if bad {
		f.Release()
		return -1
	}
	return f.Score()
}

func cleanEscapeWithoutRelease(f *pg.Flow) *result {
	// Handing the flow off entirely is fine; the consumer owns it.
	return &result{Flow: f, Score: f.Score()}
}

func cleanCalleeBorrows(f *pg.Flow, scorer func(*pg.Flow) int) {
	// Passing as a plain argument is a borrow, not an escape.
	scorer(f)
	f.Release()
}

func cleanBorrowPutAllPaths(p *pg.Pool, bad bool) int {
	g := p.Get()
	if bad {
		p.Put(g)
		return -1
	}
	n := g.Score()
	p.Put(g)
	return n
}

func cleanBorrowReleased(p *pg.Pool) {
	g := p.Get()
	g.Release()
}

func cleanBorrowHandedOff(p *pg.Pool) *pg.Flow {
	// Ownership moves to the caller; the balance is theirs now.
	g := p.Get()
	return g
}

func cleanBorrowPerIteration(p *pg.Pool, n int) {
	for i := 0; i < n; i++ {
		g := p.Get()
		g.Score()
		p.Put(g)
	}
}

func cleanReleaseOnlyLoser(frontier []*result, keep *pg.Flow) {
	// Release every frontier flow except the winner (rebind-per-
	// iteration plus a guard).
	for _, s := range frontier {
		if s.Flow != keep {
			s.Flow.Release()
		}
	}
}
