// Package service exercises the typed-validation-error rules from a
// package path ending in internal/service (in scope).
package service

import (
	"errors"
	"fmt"

	"repro/internal/see"
)

// CompileRequest mirrors a wire-facing request type.
type CompileRequest struct {
	Ops  int
	Kind string
}

func (r *CompileRequest) Validate() error {
	if r.Ops < 0 {
		return errors.New("ops negative") // want `validation failure built with errors\.New`
	}
	if r.Ops > 1<<16 {
		return fmt.Errorf("ops %d too large", r.Ops) // want `validation failure built with fmt\.Errorf`
	}
	if r.Kind == "" {
		return &see.OptionError{Field: "Kind", Reason: "empty"}
	}
	return nil
}

func (r *CompileRequest) normalize() error {
	if r.Kind == "bad" {
		return fmt.Errorf("kind rejected") // want `validation failure built with fmt\.Errorf`
	}
	return nil
}

func validateOps(n int) error {
	if n < 0 {
		return fmt.Errorf("ops: %w", &see.OptionError{Field: "Ops", Value: n, Reason: "negative"})
	}
	return nil
}

func submit(r *CompileRequest) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("bad request: %v", err) // want `error formatted with %v loses the chain`
	}
	if err := r.normalize(); err != nil {
		return fmt.Errorf("bad request: %w", err)
	}
	// A non-error %v operand is fine outside strict contexts.
	return fmt.Errorf("submit %s failed after %d ops", r.Kind, r.Ops)
}
