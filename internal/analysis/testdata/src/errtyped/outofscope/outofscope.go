// Package outofscope is outside the see/core/driver/service scope:
// nothing here is flagged.
package outofscope

import (
	"errors"
	"fmt"
)

func Validate(n int) error {
	if n < 0 {
		return errors.New("negative")
	}
	return fmt.Errorf("odd: %v", errors.New("inner"))
}
