// Package journalbalance exercises the checkpoint/rollback balance
// check on the pg.Flow stub.
package journalbalance

import "repro/internal/pg"

func balancedLinear(f *pg.Flow) {
	mark := f.Checkpoint()
	f.Assign(1, 2)
	f.Rollback(mark)
}

func balancedDrop(f *pg.Flow) int {
	f.Checkpoint()
	n := f.Assign(1, 2)
	f.DropJournal()
	return n
}

func balancedBranches(f *pg.Flow, bad bool) {
	mark := f.Checkpoint()
	if bad {
		f.Rollback(mark)
		return
	}
	f.DropJournal()
}

func balancedDefer(f *pg.Flow) {
	mark := f.Checkpoint()
	defer f.Rollback(mark)
	f.Assign(1, 2)
}

func balancedLoopPerIteration(f *pg.Flow, n int) {
	for i := 0; i < n; i++ {
		mark := f.Checkpoint()
		f.Assign(i, i)
		f.Rollback(mark)
	}
}

// rollbackInLoopThenFallOff mirrors the engine's eval loop: the
// checkpoint before the loop is rolled back once per iteration, and
// the lenient-loop rule accepts the fall-through.
func rollbackInLoopThenFallOff(f *pg.Flow, n int) {
	mark := f.Checkpoint()
	for i := 0; i < n; i++ {
		f.Assign(i, i)
		f.Rollback(mark)
	}
}

// balancedByRelease: Release retires the journal with the rest of the
// flow, so a live checkpoint on a released flow is settled, not leaked.
func balancedByRelease(f *pg.Flow) {
	f.Checkpoint()
	f.Assign(1, 2)
	f.Release()
}

func balancedByReleaseOnOnePath(f *pg.Flow, bad bool) {
	mark := f.Checkpoint()
	if bad {
		f.Release()
		return
	}
	f.Rollback(mark)
}

func releaseOfOtherFlowDoesNotBalance(f, g *pg.Flow) {
	f.Checkpoint()
	g.Release()
} // want `function falls off the end with checkpoint on f unsettled`

func escapedMark(f *pg.Flow) pg.Mark {
	mark := f.Checkpoint()
	return mark // consumer owns the balance now
}

func leakEarlyReturn(f *pg.Flow, bad bool) {
	mark := f.Checkpoint()
	if bad {
		return // want `return reached with checkpoint on f unsettled`
	}
	f.Rollback(mark)
}

func leakFallOffEnd(f *pg.Flow) {
	f.Checkpoint()
	f.Assign(1, 2)
} // want `function falls off the end with checkpoint on f unsettled`

func leakWrongReceiver(f, g *pg.Flow) {
	f.Checkpoint()
	g.DropJournal()
} // want `function falls off the end with checkpoint on f unsettled`
