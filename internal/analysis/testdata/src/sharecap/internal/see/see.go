// Package see stands in for the engine package: its import path ends
// in internal/see, so bare go statements here are inside sharecap's
// goroutine scope.
package see

import "sync"

type stats struct {
	expansions int
	mu         sync.Mutex
}

func raceLeg(s *stats, n int) {
	done := make(chan struct{})
	go func() {
		s.expansions += n // want `goroutine closure writes captured variable s`
		close(done)
	}()
	<-done
}

func raceLegGuarded(s *stats, n int) {
	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		s.expansions += n // guarded
		s.mu.Unlock()
		close(done)
	}()
	<-done
}

func legOverChannel(n int) int {
	ch := make(chan int, 1)
	go func() {
		leg := n * 2 // closure-local
		ch <- leg
	}()
	return <-ch
}
