// Package sharecap exercises the captured-write discipline for
// closures handed to the par entrypoints.
package sharecap

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/par"
)

type telemetry struct {
	rollbacks int
	evals     int
}

type engine struct {
	tel telemetry
	mu  sync.Mutex
}

// --- violations ---

func sharedCounter(n int) int {
	count := 0
	par.ForEach(n, func(i int) {
		count++ // want `closure passed to par.ForEach writes captured variable count`
	})
	return count
}

func sharedAppend(n int) []int {
	var out []int
	par.ForEach(n, func(i int) {
		out = append(out, i) // want `closure passed to par.ForEach writes captured variable out`
	})
	return out
}

func sharedTelemetry(ctx context.Context, e *engine, n int) {
	par.ForEachCtx(ctx, n, func(i int) {
		e.tel.evals++ // want `closure passed to par.ForEachCtx writes captured variable e`
	})
}

func sharedScalarChunked(ctx context.Context, n int) int {
	best := 0
	par.ForEachChunkedCtx(ctx, n, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i > best {
				best = i // want `closure passed to par.ForEachChunkedCtx writes captured variable best`
			}
		}
	})
	return best
}

func sharedMapByLocalKey(n int, m map[int]int) {
	par.ForEach(n, func(i int) {
		// Distinct keys do not make concurrent map writes safe.
		m[i] = i * i // want `closure passed to par.ForEach writes captured variable m`
	})
}

func sharedFixedSlot(n int, out []int) {
	par.ForEach(n, func(i int) {
		out[0] = i // want `closure passed to par.ForEach writes captured variable out`
	})
}

// --- sanctioned patterns ---

func perSlotWrites(n int, vs []int) []int {
	out := make([]int, n)
	par.ForEach(n, func(i int) {
		out[i] = vs[i] * 2 // one slot per worker: fine
	})
	return out
}

func perChunkScratch(ctx context.Context, n int) []int {
	out := make([]int, n)
	par.ForEachChunkedCtx(ctx, n, 8, func(lo, hi int) {
		acc := 0 // closure-local scratch
		for i := lo; i < hi; i++ {
			acc += i
			out[i] = acc
		}
	})
	return out
}

func mutexGuarded(e *engine, n int) {
	par.ForEach(n, func(i int) {
		e.mu.Lock()
		e.tel.evals++ // guarded by the Lock above
		e.mu.Unlock()
	})
}

func atomicCounter(n int) int64 {
	var count int64
	par.ForEach(n, func(i int) {
		atomic.AddInt64(&count, 1) // a call, not an assignment
	})
	return atomic.LoadInt64(&count)
}

func channelFanIn(n int) int {
	ch := make(chan int, n)
	par.ForEach(n, func(i int) {
		ch <- i // sends synchronize
	})
	total := 0
	for j := 0; j < n; j++ {
		total += <-ch
	}
	return total
}

func goOutsideScope(n int) {
	// This fixture package does not match internal/see or internal/core,
	// so bare go statements are out of sharecap's scope here.
	count := 0
	done := make(chan struct{})
	go func() {
		count = n
		close(done)
	}()
	<-done
	_ = count
}
