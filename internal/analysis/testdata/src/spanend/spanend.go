// Package spanend exercises the span-must-End check on the trace stub.
package spanend

import (
	"context"

	"repro/internal/trace"
)

func publish(sp *trace.Span) {}

func deferred(ctx context.Context) {
	ctx, sp := trace.Start(ctx, "deferred")
	defer sp.End()
	_ = ctx
}

func linear(ctx context.Context) {
	ctx, sp := trace.Start(ctx, "linear")
	sp.SetInt("n", 1)
	sp.End()
	_ = ctx
}

func branches(ctx context.Context, bad bool) error {
	ctx, sp := trace.Start(ctx, "branches")
	_ = ctx
	if bad {
		sp.End()
		return nil
	}
	sp.SetBool("ok", true)
	sp.End()
	return nil
}

func escaped(ctx context.Context) {
	ctx, sp := trace.Start(ctx, "escaped")
	publish(sp) // the consumer owns the End now
	_ = ctx
}

func discarded(ctx context.Context) {
	ctx, _ = trace.Start(ctx, "discarded") // want `span from trace\.Start discarded without End`
	_ = ctx
}

func leakEarlyReturn(ctx context.Context, bad bool) error {
	ctx, sp := trace.Start(ctx, "leak")
	_ = ctx
	if bad {
		return nil // want `return reached with span sp never Ended`
	}
	sp.End()
	return nil
}

func leakFallOffEnd(ctx context.Context) {
	ctx, sp := trace.Start(ctx, "leak")
	sp.SetStr("k", "v")
	_ = ctx
} // want `function falls off the end with span sp never Ended`
