// Package hotpathalloc exercises the allocation rules: annotated
// functions must be free of allocating constructs; unannotated
// functions may do whatever they like.
package hotpathalloc

import (
	"errors"
	"fmt"
)

type scorer interface{ score() int }

type state struct {
	buf  []int
	name string
}

func (s state) score() int { return len(s.buf) }

func runEach(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func sink(v scorer) {}

//hca:hotpath
func hotViolations(s *state, n int) {
	fmt.Println(s.name)           // want `fmt\.Println allocates`
	s.name = s.name + "suffix"    // want `string concatenation allocates`
	s.buf = make([]int, n)        // want `make allocates on the hot path`
	extra := []int{1, 2, 3}       // want `slice literal allocates`
	lut := map[int]int{1: 2}      // want `map literal allocates`
	p := &state{buf: extra}       // want `&composite literal may heap-allocate`
	other := append(extra, n)     // want `append may grow a slice`
	cl := func() int { return n } // want `closure kept beyond the call allocates`
	sink(state{})                 // want `implicit conversion of hotpathalloc\.state to interface hotpathalloc\.scorer allocates`
	_ = lut[p.score()+other[0]+cl()]
}

//hca:hotpath
func hotAllowed(s *state, n int, err error) error {
	if cap(s.buf) < n {
		s.buf = make([]int, n) // grow-only reallocation behind a cap guard
	}
	s.buf = append(s.buf, n)     // self-append into an owned buffer
	tail := append(s.buf[:0], n) // append into a reslice
	runEach(n, func(i int) {     // closure passed directly to the callee
		s.buf[0] += i + tail[0]
	})
	sink(s) // pointers are interface-shaped already
	if err != nil {
		return fmt.Errorf("hot: %w", err) // cold error path
	}
	if n < 0 {
		return errors.New("hot: negative") // cold error path
	}
	return nil
}

func coldAnything(s *state, n int) {
	fmt.Println(s.name)
	s.buf = make([]int, n)
	_ = map[int]int{1: 2}
}
