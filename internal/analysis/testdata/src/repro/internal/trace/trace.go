// Package trace is a fixture stub declared under the real package's
// import path so analyzers that match on "repro/internal/trace"
// resolve it identically in tests.
package trace

import "context"

// Span mirrors the real span.
type Span struct{}

func (s *Span) End()                       {}
func (s *Span) SetInt(key string, v int64) {}
func (s *Span) SetStr(key, v string)       {}
func (s *Span) SetBool(key string, v bool) {}

// Start mirrors the real span constructor.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}
