// Package see is a fixture stub declared under the real package's
// import path: it carries the typed OptionError and a deprecated
// wrapper for ctxfirst to flag.
package see

import (
	"context"
	"fmt"
)

// OptionError mirrors the real typed validation error.
type OptionError struct {
	Field  string
	Value  int
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("see: invalid %s %d: %s", e.Field, e.Value, e.Reason)
}

// Solve is the canonical ctx-first entry point.
func Solve(ctx context.Context, n int) (int, error) { return n, nil }

// SolveContext is the compatibility wrapper.
//
// Deprecated: call Solve directly.
func SolveContext(ctx context.Context, n int) (int, error) { return Solve(ctx, n) }
