// Package par is a fixture stub declared under the real package's
// import path so sharecap's entrypoint matching resolves identically
// in tests. The stubs run the closures serially; only the signatures
// matter to the analyzer.
package par

import "context"

func ForEach(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func ForEachCtx(ctx context.Context, n int, fn func(int)) error {
	for i := 0; i < n; i++ {
		fn(i)
	}
	return ctx.Err()
}

func ForEachChunkedCtx(ctx context.Context, n, minChunk int, fn func(lo, hi int)) error {
	fn(0, n)
	return ctx.Err()
}
