// Package core is a fixture stub declared under the real package's
// import path so memodisc's AttemptKey and memo-protocol matching
// resolves identically in tests.
package core

// AttemptKey mirrors the memo key: Engine discriminates which solver
// produced (and may reuse) a cached attempt.
type AttemptKey struct {
	DDG    uint64
	Topo   uint64
	Start  int
	WS     uint64
	Rung   int
	Flags  uint32
	Engine uint8
	Budget int
}

// AttemptEntry mirrors the memo slot.
type AttemptEntry struct {
	Volatile bool
	Score    int
}

// SubproblemMemo mirrors the acquire/complete/abandon protocol.
type SubproblemMemo interface {
	Acquire(k AttemptKey) (*AttemptEntry, bool)
	Complete(k AttemptKey, e *AttemptEntry)
	Abandon(k AttemptKey, e *AttemptEntry)
	Observe(k AttemptKey) *AttemptEntry
}
