// Package pg is a fixture stub declared under the real package's
// import path so analyzers that match on "repro/internal/pg" resolve
// it identically in tests.
package pg

// Mark mirrors the real journal mark.
type Mark struct{ n int }

// Flow mirrors the journaled assignment state.
type Flow struct{ journaling bool }

func (f *Flow) Checkpoint() Mark    { f.journaling = true; return Mark{} }
func (f *Flow) Rollback(m Mark)     {}
func (f *Flow) DropJournal()        {}
func (f *Flow) CopyFrom(src *Flow)  {}
func (f *Flow) Assign(n, c int) int { return 0 }
