// Package pg is a fixture stub declared under the real package's
// import path so analyzers that match on "repro/internal/pg" resolve
// it identically in tests.
package pg

// Mark mirrors the real journal mark.
type Mark struct{ n int }

// Flow mirrors the journaled assignment state.
type Flow struct{ journaling bool }

func (f *Flow) Checkpoint() Mark    { f.journaling = true; return Mark{} }
func (f *Flow) Rollback(m Mark)     {}
func (f *Flow) DropJournal()        {}
func (f *Flow) CopyFrom(src *Flow)  {}
func (f *Flow) Assign(n, c int) int { return 0 }
func (f *Flow) Release()            {}
func (f *Flow) Clone() *Flow        { return &Flow{} }
func (f *Flow) NumAssigned() int    { return 0 }
func (f *Flow) Score() int          { return 0 }

// Pool mirrors the SEE engine's per-solve flow pool: Get hands out a
// recycled flow the caller must Put back or Release.
type Pool struct{ free []*Flow }

func (p *Pool) Get() *Flow  { return &Flow{} }
func (p *Pool) Put(f *Flow) {}
