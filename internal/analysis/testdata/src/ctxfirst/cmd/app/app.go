// Package app is a binary: minting the root context here is the whole
// point, so no diagnostics.
package app

import (
	"context"

	"repro/internal/see"
)

func run() (int, error) {
	ctx := context.Background()
	return see.Solve(ctx, 1)
}
