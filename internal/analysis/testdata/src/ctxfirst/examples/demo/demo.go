// Package demo is example code: root contexts are fine here.
package demo

import "context"

func demo() context.Context {
	return context.TODO()
}
