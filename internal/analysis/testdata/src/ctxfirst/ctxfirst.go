// Package ctxfirst is library code: root contexts and deprecated
// wrappers are violations here.
package ctxfirst

import (
	"context"

	"repro/internal/see"
)

func freshRoot() context.Context {
	return context.Background() // want `context\.Background in library code`
}

func freshTODO() context.Context {
	return context.TODO() // want `context\.TODO in library code`
}

func deprecatedWrapper(ctx context.Context) (int, error) {
	return see.SolveContext(ctx, 1) // want `call to deprecated see\.SolveContext`
}

func canonical(ctx context.Context) (int, error) {
	return see.Solve(ctx, 1)
}

func HCAContext(ctx context.Context) error { // want `definition of retired compatibility wrapper HCAContext`
	return nil
}

func detach(ctx context.Context) context.Context {
	return context.WithoutCancel(ctx)
}
