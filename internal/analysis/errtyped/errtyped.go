// Package errtyped enforces the typed-validation-error contract: in
// the see/core/driver/service packages, validation failures surface as
// *see.OptionError (directly or through a %w wrap) so callers can
// errors.As on the field, and errors that wrap other errors use %w so
// the chain stays inspectable. Concretely it flags
//
//  1. errors.New / fmt.Errorf-without-%w inside Validate*/validate*
//     functions and inside methods on *Request/*Spec types;
//  2. fmt.Errorf anywhere in scope where a %v or %s verb formats a
//     value that is itself an error — that must be %w.
package errtyped

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errtyped",
	Doc:  "validation failures in see/core/driver/service must be typed *see.OptionError; wrapped errors must use %w",
	Run:  run,
}

// scopes are the package-path suffixes the contract covers.
var scopes = []string{"internal/see", "internal/core", "internal/driver", "internal/service"}

func inScope(path string) bool {
	for _, s := range scopes {
		if analysis.PathMatches(path, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			strict := isValidator(fd) || isRequestMethod(pass.Info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, call, strict)
				return true
			})
		}
	}
	return nil
}

// isValidator matches Validate, ValidateFoo, validateBar, ...
func isValidator(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	return strings.HasPrefix(name, "Validate") || strings.HasPrefix(name, "validate")
}

// isRequestMethod matches methods on types named *Request or *Spec —
// the service's wire-facing structs whose rejections clients must be
// able to errors.As.
func isRequestMethod(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	fn, _ := info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return strings.HasSuffix(name, "Request") || strings.HasSuffix(name, "Spec")
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, strict bool) {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "errors" && name == "New":
		if strict {
			pass.Reportf(call.Pos(), "validation failure built with errors.New: return a typed *see.OptionError")
		}
	case path == "fmt" && name == "Errorf":
		checkErrorf(pass, call, strict)
	}
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr, strict bool) {
	if len(call.Args) == 0 {
		return
	}
	format, ok := constString(pass.Info, call.Args[0])
	if !ok {
		return
	}
	verbs := parseVerbs(format)
	wraps := false
	for _, v := range verbs {
		if v.verb == 'w' {
			wraps = true
		}
	}
	// Rule 2: an error formatted with %v/%s flattens the chain.
	for _, v := range verbs {
		if v.verb != 'v' && v.verb != 's' {
			continue
		}
		argIdx := v.arg + 1 // args[0] is the format string
		if argIdx >= len(call.Args) {
			continue
		}
		t := pass.Info.Types[call.Args[argIdx]].Type
		if t != nil && implementsError(t) {
			pass.Reportf(call.Args[argIdx].Pos(), "error formatted with %%%c loses the chain: wrap it with %%w", v.verb)
			return
		}
	}
	// Rule 1: in strict contexts a fresh (non-wrapping) Errorf is an
	// untyped validation failure.
	if strict && !wraps {
		pass.Reportf(call.Pos(), "validation failure built with fmt.Errorf: return a typed *see.OptionError (or wrap one with %%w)")
	}
}

func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// verb is one conversion in a format string with the index of the
// argument it consumes.
type verb struct {
	verb rune
	arg  int
}

// parseVerbs scans a Printf-style format string and maps each verb to
// its argument index, accounting for %%, flags, *-widths and explicit
// argument indexes being absent (the repo does not use %[n]).
func parseVerbs(format string) []verb {
	var out []verb
	arg := 0
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue
		}
		// flags
		for i < len(rs) && strings.ContainsRune("+-# 0", rs[i]) {
			i++
		}
		// width
		if i < len(rs) && rs[i] == '*' {
			arg++
			i++
		} else {
			for i < len(rs) && rs[i] >= '0' && rs[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(rs) && rs[i] == '.' {
			i++
			if i < len(rs) && rs[i] == '*' {
				arg++
				i++
			} else {
				for i < len(rs) && rs[i] >= '0' && rs[i] <= '9' {
					i++
				}
			}
		}
		if i >= len(rs) {
			break
		}
		out = append(out, verb{verb: rs[i], arg: arg})
		arg++
	}
	return out
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	// fmt consults the value's own method set, so no pointer promotion.
	return types.Implements(t, errorIface)
}
