package errtyped_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/errtyped"
)

func TestErrTyped(t *testing.T) {
	antest.Run(t, antest.TestData(), errtyped.Analyzer,
		"errtyped/internal/service", "errtyped/outofscope")
}

func TestErrTypedFires(t *testing.T) {
	antest.MustFire(t, antest.TestData(), errtyped.Analyzer, "errtyped/internal/service")
}
