package hotpathalloc_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/hotpathalloc"
)

// zeroAllocBenchmarks are the internal/pg benchmarks pinned at
// 0 allocs/op (BenchmarkClone is deliberately absent: cloning
// allocates by design). Every Flow method they drive must carry the
// //hca:hotpath directive.
var zeroAllocBenchmarks = []string{
	"BenchmarkAssignRollback",
	"BenchmarkEstimateMII",
	"BenchmarkObjectiveTerms",
	"BenchmarkCopyFrom",
}

// TestBenchmarkedMethodsAreAnnotated pins the //hca:hotpath annotation
// set to the 0-allocs/op benchmarks: every Flow method a pinned
// benchmark drives must carry the directive, so the analyzer's coverage
// cannot silently drift from the benchmarks. The method set is derived
// mechanically from each benchmark's AST, not hardcoded.
func TestBenchmarkedMethodsAreAnnotated(t *testing.T) {
	pgDir := filepath.Join("..", "..", "pg")
	fset := token.NewFileSet()

	benchFile, err := parser.ParseFile(fset, filepath.Join(pgDir, "bench_test.go"), nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	annotated := annotatedFuncs(t, fset, pgDir)
	for _, name := range zeroAllocBenchmarks {
		bench := findFunc(benchFile, name)
		if bench == nil {
			t.Fatalf("%s not found in internal/pg/bench_test.go", name)
		}
		// The flow under test is the first value returned by halfAssigned
		// (or a scratch flow seeded from it); collect every method
		// selector invoked on either inside the b.N loop.
		methods := methodsCalledOnFlow(bench)
		if len(methods) == 0 {
			t.Fatalf("no Flow methods found in %s; did the benchmark change shape?", name)
		}
		for m := range methods {
			if !annotated[m] {
				t.Errorf("pg.Flow.%s is driven by %s (pinned at 0 allocs/op) but lacks a %s directive", m, name, hotpathalloc.Directive)
			}
		}
	}
}

// exactHotFuncs are the solver methods that form the exact engine's
// branch-and-bound core — the same checkpoint → assign → rollback cycle
// BenchmarkAssignRollback pins at 0 allocs/op, replayed millions of
// times per solve.
var exactHotFuncs = []string{"dfs", "evalChildren", "evalClusters", "boundDelta"}

// exactColdEdges are Flow methods the exact core is allowed to call
// without a hotpath annotation: both run only on incumbent
// improvement (a handful of times per solve) and allocate/free by
// design, so annotating them would be a lie the analyzer enforces.
var exactColdEdges = map[string]bool{"Clone": true, "Release": true}

// TestExactEngineHotLoopIsAnnotated closes the annotation set under the
// exact engine's reuse of the benchmarked hot path: every Flow method
// the branch-and-bound core drives on its working flow (s.f / f) must
// carry //hca:hotpath, minus the documented cold edges. Derived from
// internal/exact's AST, so a new method call in the solver loop fails
// here until internal/pg annotates (and thus allocation-sweeps) it.
func TestExactEngineHotLoopIsAnnotated(t *testing.T) {
	fset := token.NewFileSet()
	exactFile, err := parser.ParseFile(fset, filepath.Join("..", "..", "exact", "exact.go"), nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	annotated := annotatedFuncs(t, fset, filepath.Join("..", "..", "pg"))

	methods := map[string]bool{}
	for _, name := range exactHotFuncs {
		fd := findFunc(exactFile, name)
		if fd == nil {
			t.Fatalf("solver.%s not found in internal/exact/exact.go; did the solver change shape?", name)
		}
		for m := range methodsCalledOnWorkingFlow(fd) {
			methods[m] = true
		}
	}
	if len(methods) == 0 {
		t.Fatal("no Flow methods found in the exact solver core; did the receiver naming change?")
	}
	for m := range methods {
		if exactColdEdges[m] {
			continue
		}
		if !annotated[m] {
			t.Errorf("pg.Flow.%s is driven by the exact engine's branch-and-bound core (which reuses the BenchmarkAssignRollback hot path) but lacks a %s directive", m, hotpathalloc.Directive)
		}
	}
}

// methodsCalledOnWorkingFlow collects method names invoked on the exact
// solver's working flow: the `s.f` field or a local `f` bound to it.
func methodsCalledOnWorkingFlow(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.Ident:
			if x.Name == "f" {
				out[sel.Sel.Name] = true
			}
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && id.Name == "s" && x.Sel.Name == "f" {
				out[sel.Sel.Name] = true
			}
		}
		return true
	})
	return out
}

func findFunc(f *ast.File, name string) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

// methodsCalledOnFlow collects the names of methods called on the `f`
// or `scratch` identifiers (the benchmarked Flow and its pooled twin)
// inside the function body.
func methodsCalledOnFlow(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "f" || id.Name == "scratch") {
			out[sel.Sel.Name] = true
		}
		return true
	})
	return out
}

// annotatedFuncs returns the names of every function/method in the
// package directory whose doc comment carries the hotpath directive.
func annotatedFuncs(t *testing.T, fset *token.FileSet, dir string) map[string]bool {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && hotpathalloc.IsHotPath(fd) {
				out[fd.Name.Name] = true
			}
		}
	}
	return out
}
