// Package hotpathalloc keeps the functions that BenchmarkAssignRollback
// and the SEE inner loop pin at 0 allocs/op allocation-free by
// construction. Functions opt in with a //hca:hotpath directive in
// their doc comment; inside them the analyzer flags the constructs the
// compiler lowers to runtime allocation:
//
//   - fmt.* calls and non-constant string concatenation
//   - append that can grow a slice it does not own (anything but
//     x = append(x, ...) self-append or appending into a reslice)
//   - make/new outside an if cap(...)/len(...) growth guard
//   - map and slice literals, and &T{...} pointer literals
//   - function literals except those passed directly to a call
//     (inlinable by the parallel-for idiom) or invoked in place
//   - implicit conversions of non-pointer-shaped values to interfaces
//
// Error returns are cold by definition: a return statement that
// constructs an error via fmt.Errorf/errors.New, and panic arguments,
// are skipped entirely.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Directive is the doc-comment line that opts a function in.
const Directive = "//hca:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocating constructs inside //hca:hotpath functions",
	Run:  run,
}

// IsHotPath reports whether the declaration carries the directive.
func IsHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Directive {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !IsHotPath(fd) {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

// span is a half-open position interval.
type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return s.lo <= p && p < s.hi }

type checker struct {
	pass *analysis.Pass
	// cold spans: error-constructing returns and panic arguments.
	cold []span
	// guarded spans: bodies of if statements whose condition consults
	// cap() or len(), the idiom for grow-only scratch reuse.
	guarded []span
	// allowed function literals: direct call arguments or immediately
	// invoked.
	okLits map[*ast.FuncLit]bool
	// allowed appends: x = append(x, ...) self-appends.
	okAppends map[*ast.CallExpr]bool
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{
		pass:      pass,
		okLits:    map[*ast.FuncLit]bool{},
		okAppends: map[*ast.CallExpr]bool{},
	}
	c.classify(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if c.isCold(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			c.call(n)
		case *ast.BinaryExpr:
			c.concat(n)
		case *ast.CompositeLit:
			c.composite(n)
		case *ast.UnaryExpr:
			c.addrLit(n)
		case *ast.FuncLit:
			if !c.okLits[n] {
				c.pass.Reportf(n.Pos(), "closure kept beyond the call allocates; hoist it or pass it directly to the callee")
			}
			// Never descend: a closure body runs on its own budget.
			return false
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.ReturnStmt:
			c.returns(fd, n)
		}
		return true
	})
}

// classify walks the body once to record cold spans, growth guards and
// the allow-lists that later checks consult.
func (c *checker) classify(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if constructsError(c.pass.Info, n) {
				c.cold = append(c.cold, span{n.Pos(), n.End()})
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" && isBuiltin(c.pass.Info, id) {
				c.cold = append(c.cold, span{n.Pos(), n.End()})
			}
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				c.okLits[lit] = true // invoked in place
			}
			for _, arg := range n.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					c.okLits[lit] = true // passed directly to a call
				}
			}
		case *ast.GoStmt:
			// A go statement always moves its closure to the heap;
			// revoke the direct-argument allowance inside it.
			ast.Inspect(n.Call, func(m ast.Node) bool {
				if lit, ok := m.(*ast.FuncLit); ok {
					delete(c.okLits, lit)
					return false
				}
				return true
			})
		case *ast.IfStmt:
			if consultsCap(n.Cond) {
				c.guarded = append(c.guarded, span{n.Body.Pos(), n.Body.End()})
			}
		case *ast.AssignStmt:
			c.markSelfAppends(n)
		}
		return true
	})
}

// markSelfAppends records append calls of the shape x = append(x, ...).
func (c *checker) markSelfAppends(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isAppend(c.pass.Info, call) || len(call.Args) == 0 {
			continue
		}
		if types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
			c.okAppends[call] = true
		}
	}
}

func (c *checker) isCold(p token.Pos) bool {
	for _, s := range c.cold {
		if s.contains(p) {
			return true
		}
	}
	return false
}

func (c *checker) isGuarded(p token.Pos) bool {
	for _, s := range c.guarded {
		if s.contains(p) {
			return true
		}
	}
	return false
}

func (c *checker) call(call *ast.CallExpr) {
	info := c.pass.Info
	switch {
	case isAppend(info, call):
		if c.okAppends[call] {
			return
		}
		if len(call.Args) > 0 {
			if _, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok {
				return // appending into a reslice of owned backing store
			}
		}
		c.pass.Reportf(call.Pos(), "append may grow a slice the hot path does not own; use x = append(x, ...) on a preallocated buffer")
	case isBuiltinNamed(info, call, "make"), isBuiltinNamed(info, call, "new"):
		if c.isGuarded(call.Pos()) {
			return // grow-only scratch reuse behind a cap/len guard
		}
		c.pass.Reportf(call.Pos(), "%s allocates on the hot path; reuse a preallocated buffer (cap-guarded growth is allowed)", ast.Unparen(call.Fun).(*ast.Ident).Name)
	default:
		fn := analysis.Callee(info, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			c.pass.Reportf(call.Pos(), "fmt.%s allocates; hot paths must not format", fn.Name())
			return
		}
		c.callArgs(call)
	}
}

// callArgs flags concrete non-pointer-shaped arguments passed to
// interface parameters — each such call boxes the value.
func (c *checker) callArgs(call *ast.CallExpr) {
	info := c.pass.Info
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at) || isPointerShaped(at) || isUntypedNil(at) {
			continue
		}
		c.pass.Reportf(arg.Pos(), "implicit conversion of %s to interface %s allocates", at, pt)
	}
}

func (c *checker) concat(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv := c.pass.Info.Types[b]
	if tv.Type == nil || tv.Value != nil { // non-string or folded constant
		return
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
		c.pass.Reportf(b.OpPos, "string concatenation allocates on the hot path")
	}
}

func (c *checker) composite(lit *ast.CompositeLit) {
	t := c.pass.Info.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "map literal allocates; hoist it out of the hot path")
	case *types.Slice:
		c.pass.Reportf(lit.Pos(), "slice literal allocates; reuse a preallocated buffer")
	}
}

// addrLit flags &T{...}, which heap-allocates when it escapes; hot
// paths must not rely on escape analysis proving otherwise.
func (c *checker) addrLit(u *ast.UnaryExpr) {
	if u.Op != token.AND {
		return
	}
	if _, ok := ast.Unparen(u.X).(*ast.CompositeLit); ok {
		c.pass.Reportf(u.Pos(), "&composite literal may heap-allocate; use a value or preallocated object")
	}
}

// assign flags implicit interface boxing on assignment.
func (c *checker) assign(as *ast.AssignStmt) {
	if as.Tok == token.DEFINE {
		return // := infers the concrete type, no boxing
	}
	info := c.pass.Info
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := info.Types[as.Lhs[i]].Type
		rt := info.Types[as.Rhs[i]].Type
		if lt == nil || rt == nil || !types.IsInterface(lt) {
			continue
		}
		if types.IsInterface(rt) || isPointerShaped(rt) || isUntypedNil(rt) {
			continue
		}
		c.pass.Reportf(as.Rhs[i].Pos(), "implicit conversion of %s to interface %s allocates", rt, lt)
	}
}

// returns flags boxing at return sites when the signature returns an
// interface but the expression is a concrete non-pointer value.
func (c *checker) returns(fd *ast.FuncDecl, r *ast.ReturnStmt) {
	info := c.pass.Info
	obj, _ := info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() != len(r.Results) {
		return
	}
	for i, res := range r.Results {
		rt := sig.Results().At(i).Type()
		if !types.IsInterface(rt) {
			continue
		}
		at := info.Types[res].Type
		if at == nil || types.IsInterface(at) || isPointerShaped(at) || isUntypedNil(at) {
			continue
		}
		c.pass.Reportf(res.Pos(), "implicit conversion of %s to interface %s allocates", at, rt)
	}
}

// --- helpers ---

func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

func isBuiltinNamed(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == name && isBuiltin(info, id)
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	return isBuiltinNamed(info, call, "append")
}

// constructsError reports whether the node contains a fmt.Errorf or
// errors.New call, or constructs a value of a concrete type implementing
// error (a typed, possibly lazily-formatted error like pg's flowError) —
// the signatures of a cold error path.
func constructsError(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.CallExpr:
			fn := analysis.Callee(info, m)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			p, name := fn.Pkg().Path(), fn.Name()
			if (p == "fmt" && name == "Errorf") || (p == "errors" && name == "New") {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			if m.Op != token.AND {
				return true
			}
			if _, ok := ast.Unparen(m.X).(*ast.CompositeLit); !ok {
				return true
			}
			if tv, ok := info.Types[m]; ok && types.Implements(tv.Type, errorIface) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// errorIface is the built-in error interface, used to recognize typed
// error constructions.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// consultsCap reports whether the expression calls cap() or len(),
// the evidence that a make is a grow-only reallocation.
func consultsCap(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.Types[call.Fun].Type
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// paramType returns the effective parameter type for argument i,
// unrolling variadics.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// isPointerShaped reports types whose interface representation stores
// the value directly in the data word — no boxing allocation.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isUntypedNil(t types.Type) bool {
	basic, ok := t.(*types.Basic)
	return ok && basic.Kind() == types.UntypedNil
}
