package hotpathalloc_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	antest.Run(t, antest.TestData(), hotpathalloc.Analyzer, "hotpathalloc")
}

func TestHotPathAllocFires(t *testing.T) {
	antest.MustFire(t, antest.TestData(), hotpathalloc.Analyzer, "hotpathalloc")
}
