package registry_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/registry"
)

// TestRegistryIsWellFormed pins the suite's shape: unique names, and
// every entry declares fixtures with Fire among them.
func TestRegistryIsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range registry.All() {
		name := e.Analyzer.Name
		if seen[name] {
			t.Errorf("analyzer %s registered twice", name)
		}
		seen[name] = true
		if e.Analyzer.Doc == "" {
			t.Errorf("analyzer %s has no Doc", name)
		}
		if len(e.Fixtures) == 0 {
			t.Errorf("analyzer %s registered without fixtures", name)
		}
		fireListed := false
		for _, f := range e.Fixtures {
			if f == e.Fire {
				fireListed = true
			}
		}
		if !fireListed {
			t.Errorf("analyzer %s: Fire fixture %q is not in Fixtures %v", name, e.Fire, e.Fixtures)
		}
	}
}

// TestEveryAnalyzerHasFixtureCoverage is the meta-test the satellite
// asks for: every registered analyzer must come with positive coverage
// (at least one // want comment proving it fires and pinning the
// message) and negative coverage (at least one declaration free of
// want comments, pinning where it stays silent), and MustFire must be
// honored on the designated fixture. A new analyzer cannot be
// registered untested.
func TestEveryAnalyzerHasFixtureCoverage(t *testing.T) {
	td := antest.TestData()
	for _, e := range registry.All() {
		e := e
		t.Run(e.Analyzer.Name, func(t *testing.T) {
			wants, cleanDecls := 0, 0
			for _, fixture := range e.Fixtures {
				w, c := fixtureShape(t, filepath.Join(td, "src", filepath.FromSlash(fixture)))
				wants += w
				cleanDecls += c
			}
			if wants == 0 {
				t.Errorf("analyzer %s has no positive fixture: no // want comment under %v", e.Analyzer.Name, e.Fixtures)
			}
			if cleanDecls == 0 {
				t.Errorf("analyzer %s has no negative fixture: every declaration under %v carries a want", e.Analyzer.Name, e.Fixtures)
			}
			// The want comments must all be claimed by diagnostics (and
			// vice versa)...
			antest.Run(t, td, e.Analyzer, e.Fixtures...)
			// ...and the analyzer must actually fire on its Fire fixture
			// even with the wants ignored.
			antest.MustFire(t, td, e.Analyzer, e.Fire)
		})
	}
}

// fixtureShape parses one fixture package directory and counts the
// want comments and the top-level declarations containing none.
func fixtureShape(t *testing.T, dir string) (wants, cleanDecls int) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, ent.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", ent.Name(), err)
		}
		var wantLines []int
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "// want ") {
					wants++
					wantLines = append(wantLines, fset.Position(c.Pos()).Line)
				}
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			lo := fset.Position(fd.Pos()).Line
			hi := fset.Position(fd.End()).Line
			clean := true
			for _, wl := range wantLines {
				// A want on the closing-brace line (fall-off-the-end
				// diagnostics) belongs to the function too.
				if wl >= lo && wl <= hi {
					clean = false
				}
			}
			if clean {
				cleanDecls++
			}
		}
	}
	return wants, cleanDecls
}
