// Package registry is the single list of analyzers in the hcalint
// suite. cmd/hcalint runs what is registered here, and the registry
// meta-test enforces that every entry ships with fixture coverage —
// a positive fixture proving the analyzer fires and negative
// declarations pinning where it stays silent — so an analyzer cannot
// be registered without tests.
package registry

import (
	"repro/internal/analysis"
	"repro/internal/analysis/ctxfirst"
	"repro/internal/analysis/errtyped"
	"repro/internal/analysis/flowlife"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/journalbalance"
	"repro/internal/analysis/memodisc"
	"repro/internal/analysis/sharecap"
	"repro/internal/analysis/spanend"
)

// Entry registers one analyzer with its fixture coverage.
type Entry struct {
	Analyzer *analysis.Analyzer
	// Fixtures are the antest package paths under testdata/src the
	// analyzer is validated against (want comments must all match).
	Fixtures []string
	// Fire is the fixture package on which the analyzer must report at
	// least one diagnostic (the MustFire check); it must be listed in
	// Fixtures.
	Fire string
}

// All returns the suite in stable (alphabetical) order.
func All() []Entry {
	return []Entry{
		{Analyzer: ctxfirst.Analyzer, Fixtures: []string{"ctxfirst", "ctxfirst/cmd/app", "ctxfirst/examples/demo"}, Fire: "ctxfirst"},
		{Analyzer: errtyped.Analyzer, Fixtures: []string{"errtyped/internal/service", "errtyped/outofscope"}, Fire: "errtyped/internal/service"},
		{Analyzer: flowlife.Analyzer, Fixtures: []string{"flowlife"}, Fire: "flowlife"},
		{Analyzer: hotpathalloc.Analyzer, Fixtures: []string{"hotpathalloc"}, Fire: "hotpathalloc"},
		{Analyzer: journalbalance.Analyzer, Fixtures: []string{"journalbalance"}, Fire: "journalbalance"},
		{Analyzer: memodisc.Analyzer, Fixtures: []string{"memodisc", "memodisc/internal/service"}, Fire: "memodisc"},
		{Analyzer: sharecap.Analyzer, Fixtures: []string{"sharecap", "sharecap/internal/see"}, Fire: "sharecap"},
		{Analyzer: spanend.Analyzer, Fixtures: []string{"spanend"}, Fire: "spanend"},
	}
}

// Analyzers returns just the analyzers, in registry order.
func Analyzers() []*analysis.Analyzer {
	entries := All()
	out := make([]*analysis.Analyzer, len(entries))
	for i, e := range entries {
		out[i] = e.Analyzer
	}
	return out
}
