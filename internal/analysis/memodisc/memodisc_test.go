package memodisc_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/memodisc"
)

func TestMemoDisc(t *testing.T) {
	antest.Run(t, antest.TestData(), memodisc.Analyzer, "memodisc", "memodisc/internal/service")
}

func TestMemoDiscFires(t *testing.T) {
	antest.MustFire(t, antest.TestData(), memodisc.Analyzer, "memodisc")
}
