// Package memodisc enforces the engine/memo discipline introduced with
// the portfolio racer:
//
//  1. Every core.AttemptKey composite literal must set Engine — in the
//     literal itself or by an unconditional `k.Engine = ...` before the
//     key is used. Attempts solved by different engines are different
//     subproblems; an engine-less key lets a beam result satisfy an
//     exact lookup (or vice versa), silently contaminating the memo.
//  2. A function that Completes a subproblem memo entry must also
//     reference the volatile marker and be able to Abandon: portfolio
//     race results are volatile (the loser was cancelled, budgets were
//     split) and must never flow into a memo Put/Complete.
//  3. Every field of the service OptionsSpec must appear in the
//     cacheKey fingerprint: a request knob that does not reach the
//     fingerprint makes cached responses collide across requests that
//     differ in that knob.
package memodisc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/pathcheck"
)

const (
	corePath    = "repro/internal/core"
	servicePath = "internal/service"
)

// Analyzer enforces memo/engine discipline.
var Analyzer = &analysis.Analyzer{
	Name: "memodisc",
	Doc:  "AttemptKey constructions must set Engine, memo Complete callers must guard volatile race results, and every OptionsSpec field must reach cacheKey",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkKeyConstruction(pass, n.Body)
					checkCompleteGuard(pass, n)
				}
			case *ast.FuncLit:
				checkKeyConstruction(pass, n.Body)
			}
			return true
		})
	}
	if analysis.PathMatches(pass.Pkg.Path(), servicePath) {
		checkFingerprint(pass)
	}
	return nil
}

// --- rule 1: AttemptKey constructions set Engine ---

// isAttemptKeyLit reports whether e is a composite literal of
// core.AttemptKey that does not already set Engine (either via the
// Engine key or by being fully positional).
func isAttemptKeyLit(info *types.Info, e ast.Expr) (*ast.CompositeLit, bool) {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return nil, false
	}
	tv, ok := info.Types[lit]
	if !ok {
		return nil, false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "AttemptKey" || named.Obj().Pkg() == nil ||
		!analysis.PathMatches(named.Obj().Pkg().Path(), corePath) {
		return nil, false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, false
	}
	if len(lit.Elts) > 0 {
		if _, isKV := lit.Elts[0].(*ast.KeyValueExpr); !isKV {
			// Positional literal: legal only when every field is given,
			// so Engine is among them.
			return lit, len(lit.Elts) != st.NumFields()
		}
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Engine" {
			return lit, false
		}
	}
	return lit, true
}

// checkKeyConstruction anchors every engine-less AttemptKey literal in
// body. A literal bound to a plain identifier is tracked through the
// lattice: the key may be mutated (flags, budget) but any use —
// passing it, returning it, copying it, reading a field — before an
// unconditional `k.Engine = ...` is reported. A literal that is not
// bound to an identifier has no later chance to set Engine and is
// reported immediately.
func checkKeyConstruction(pass *analysis.Pass, body *ast.BlockStmt) {
	anchored := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false // nested literals get their own walk
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Rhs {
					lit, missing := isAttemptKeyLit(pass.Info, n.Rhs[i])
					if lit == nil || !missing {
						continue
					}
					id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
					if !ok || id.Name == "_" {
						pass.Reportf(lit.Pos(), "AttemptKey constructed without Engine; engine-less keys let one engine's result satisfy another's lookup")
						continue
					}
					if obj := pass.Info.ObjectOf(id); obj != nil {
						anchored[obj] = true
					}
				}
			}
			return true
		case *ast.CompositeLit:
			// Literals not caught above (arguments, returns, struct
			// fields, slice elements) cannot gain an Engine afterwards.
			if inner, missing := isAttemptKeyLit(pass.Info, n); inner != nil && missing && !isAssignedRHS(body, n) {
				pass.Reportf(n.Pos(), "AttemptKey constructed without Engine; engine-less keys let one engine's result satisfy another's lookup")
				_ = inner
			}
		}
		return true
	})
	for obj := range anchored {
		trackKey(pass, body, obj)
	}
}

// isAssignedRHS reports whether lit is directly the RHS of a 1:1
// assignment in body (then checkKeyConstruction anchors it instead of
// reporting it inline).
func isAssignedRHS(body *ast.BlockStmt, lit *ast.CompositeLit) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for _, r := range as.Rhs {
				if ast.Unparen(r) == lit {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// trackKey runs the lattice for one anchored key variable. The state
// machine reuses the release lattice with inverted reading: "released"
// means "constructed with Engine unset"; assigning k.Engine is the
// kill that makes the key safe; any use while unset is reported.
func trackKey(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) {
	name := obj.Name()
	lc := &pathcheck.LifeChecker{
		Classify: func(n ast.Node) pathcheck.Effect {
			var eff pathcheck.Effect
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, l := range s.Lhs {
					l = ast.Unparen(l)
					if sel, ok := l.(*ast.SelectorExpr); ok {
						base, isID := ast.Unparen(sel.X).(*ast.Ident)
						if isID && pass.Info.ObjectOf(base) == obj {
							if sel.Sel.Name == "Engine" {
								eff.Kill = true // the settle
							}
							// Writes to other fields (Flags, Budget)
							// mutate the key in place: neutral.
							continue
						}
					}
					if id, ok := l.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
						eff.Kill = true
						if len(s.Lhs) == len(s.Rhs) {
							if _, missing := isAttemptKeyLit(pass.Info, s.Rhs[i]); missing {
								eff.Release = true // re-anchored engine-less
							}
						}
					}
				}
				for i, r := range s.Rhs {
					// The anchored literal itself mentions nothing; a
					// copy from k while unset propagates the bug.
					if lit, _ := isAttemptKeyLit(pass.Info, r); lit != nil && len(s.Lhs) == len(s.Rhs) {
						if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
							continue
						}
					}
					if mentionsObj(pass.Info, obj, r) {
						eff.Use = true
					}
				}
			case *ast.DeclStmt:
				if declaresObj(pass.Info, obj, s) {
					eff.Kill = true
				}
			case ast.Node:
				if mentionsObj(pass.Info, obj, s) {
					eff.Use = true
				}
			}
			return eff
		},
	}
	for _, v := range pathcheck.CheckLife(lc, body) {
		if v.Code == pathcheck.UseAfterRelease {
			pass.Reportf(v.Pos, "AttemptKey %s may be used before Engine is set; set k.Engine before the key leaves this function", name)
		}
	}
}

func mentionsObj(info *types.Info, obj types.Object, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func declaresObj(info *types.Info, obj types.Object, s *ast.DeclStmt) bool {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return false
	}
	for _, spec := range gd.Specs {
		if vs, ok := spec.(*ast.ValueSpec); ok {
			for _, name := range vs.Names {
				if info.Defs[name] == obj {
					return true
				}
			}
		}
	}
	return false
}

// --- rule 2: Complete callers guard volatile results ---

// memoTypes are the receiver type names whose Complete/Abandon calls
// carry the memo protocol.
var memoTypes = []string{"SubproblemMemo", "Memo"}

func isMemoMethod(info *types.Info, call *ast.CallExpr, method string) bool {
	fn := analysis.Callee(info, call)
	for _, tn := range memoTypes {
		if analysis.IsMethodOn(fn, corePath, tn, method) {
			return true
		}
	}
	return false
}

// checkCompleteGuard requires every function that calls Complete on a
// memo to (a) reference the volatile marker and (b) call Abandon on
// some path. soloAttempt is the shape: volatile outcomes (cancelled
// race losers, partial budgets) are Abandoned so waiters retry, and
// only durable results Complete.
func checkCompleteGuard(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Recv != nil {
		// Methods on the memo types themselves implement the protocol;
		// the rule targets their callers.
		if id := receiverTypeName(fd); id != "" {
			for _, tn := range memoTypes {
				if id == tn {
					return
				}
			}
		}
	}
	var completes []*ast.CallExpr
	hasAbandon := false
	hasVolatile := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isMemoMethod(pass.Info, n, "Complete") {
				completes = append(completes, n)
			}
			if isMemoMethod(pass.Info, n, "Abandon") {
				hasAbandon = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "volatile" || n.Sel.Name == "Volatile" {
				hasVolatile = true
			}
		}
		return true
	})
	for _, call := range completes {
		switch {
		case !hasVolatile:
			pass.Reportf(call.Pos(), "memo Complete without checking the volatile marker; portfolio race results must be Abandoned, not cached")
		case !hasAbandon:
			pass.Reportf(call.Pos(), "memo Complete without an Abandon path; volatile results have no way out of the protocol")
		}
	}
}

func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// --- rule 3: OptionsSpec fields reach cacheKey ---

func checkFingerprint(pass *analysis.Pass) {
	var spec *ast.StructType
	var specFields []*ast.Ident
	var cacheKey *ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, s := range d.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok || ts.Name.Name != "OptionsSpec" {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						spec = st
						for _, f := range st.Fields.List {
							specFields = append(specFields, f.Names...)
						}
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name == "cacheKey" {
					cacheKey = d
				}
			}
		}
	}
	if spec == nil {
		return
	}
	if cacheKey == nil || cacheKey.Body == nil {
		pass.Reportf(spec.Pos(), "OptionsSpec has no cacheKey fingerprint function in this package")
		return
	}
	used := make(map[string]bool)
	ast.Inspect(cacheKey.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			used[sel.Sel.Name] = true
		}
		return true
	})
	for _, f := range specFields {
		if !used[f.Name] {
			pass.Reportf(f.Pos(), "OptionsSpec.%s does not reach cacheKey; cached responses would collide across requests differing in %s", f.Name, f.Name)
		}
	}
}
