package pathcheck

import (
	"go/ast"
	"go/token"
)

// This file extends pathcheck from the single-obligation walk in
// pathcheck.go to a per-variable abstract-state lattice: instead of
// asking "is the one obligation settled on every path", it tracks what
// a specific value IS on every path — live, released, escaped — and
// reports the transitions that are never legal (using a released
// value, releasing twice, releasing something another owner can still
// see). The lattice is a may-analysis: state is a bitset and the join
// at a merge point is set union, so "released on one branch" taints
// the merged path and a later use is reported. Loops run to a fixed
// point (the bitset is joined monotonically at the loop head, so at
// most four silent iterations) and are then walked once more in
// reporting mode, which keeps diagnostics deterministic and
// de-duplicated.

// VarState is the abstract state of one tracked value, as a may-bitset:
// several bits set means the value may be in any of those states
// depending on the path taken.
type VarState uint8

const (
	// StLive: the value is usable.
	StLive VarState = 1 << iota
	// StReleased: Release ran; the backing arrays are on the slab free
	// lists and any use is silent state corruption.
	StReleased
	// StDeferReleased: a deferred Release is pending. Uses later in the
	// body are legal (the defer runs at exit); a second Release is not.
	StDeferReleased
	// StEscaped: the value was returned, stored into a longer-lived
	// structure, or captured by a spawned goroutine — another owner can
	// reach it, so releasing it here would pull the arrays out from
	// under them.
	StEscaped
)

// Effect is what one atomic statement (or control-clause expression:
// an if/for condition, a range operand, a switch tag) does to the
// tracked value. The walker never descends into expressions itself;
// Classify is handed whole leaf nodes and reports the combined effect.
type Effect struct {
	// Use: the value is read (receiver of a method call, operand of an
	// expression, argument to a call).
	Use bool
	// Release: the value's Release (or equivalent retire) runs here.
	Release bool
	// DeferRelease: a Release is deferred to function exit.
	DeferRelease bool
	// Escape: the value is returned, stored, or captured somewhere the
	// walk cannot follow.
	Escape bool
	// Kill: the variable is rebound to a fresh value; the old value's
	// history ends and tracking restarts at live.
	Kill bool
	// Pos overrides the reporting position (defaults to the node's own).
	Pos token.Pos
}

// LifeCode classifies a lattice violation.
type LifeCode int

const (
	// UseAfterRelease: the value is read on a path where it may already
	// be released.
	UseAfterRelease LifeCode = iota
	// DoubleRelease: Release runs on a path where it may already have
	// run (explicitly or via defer).
	DoubleRelease
	// ReleaseAfterEscape: Release runs after the value escaped to
	// another owner.
	ReleaseAfterEscape
)

// LifeViolation is one reported transition.
type LifeViolation struct {
	Pos  token.Pos
	Code LifeCode
}

// LifeChecker drives a CheckLife walk for one tracked value.
type LifeChecker struct {
	// Classify reports the effect of one leaf node on the tracked
	// value. It is called for every atomic statement and for bare
	// control-clause expressions (conditions, range operands, switch
	// tags); defer and go statements are passed whole so the classifier
	// can distinguish deferral and capture.
	Classify func(n ast.Node) Effect
	// Rebinds reports whether the range clause of s rebinds the tracked
	// value's base variable, so each iteration starts from a fresh live
	// value (`for _, s := range frontier` when tracking s.flow).
	Rebinds func(s *ast.RangeStmt) bool
}

// CheckLife walks body tracking one value from a live start state and
// returns every invalid transition, in walk order.
func CheckLife(c *LifeChecker, body *ast.BlockStmt) []LifeViolation {
	w := &lifeWalker{c: c, seen: make(map[lifeKey]bool)}
	w.seq(body.List, lifeOut{st: StLive, reach: true})
	return w.violations
}

// lifeOut is the dataflow fact at a program point: the value's state
// bitset, and whether control can reach this point at all.
type lifeOut struct {
	st    VarState
	reach bool
}

func joinOut(a, b lifeOut) lifeOut {
	switch {
	case !a.reach:
		return b
	case !b.reach:
		return a
	}
	return lifeOut{st: a.st | b.st, reach: true}
}

// lifeFrame accumulates the states carried out of a breakable
// construct by break (and, for loops, continue) statements.
type lifeFrame struct {
	label   string
	loop    bool // continue targets only loop frames
	breakSt VarState
	breakOK bool
	contSt  VarState
	contOK  bool
}

type lifeKey struct {
	pos  token.Pos
	code LifeCode
}

type lifeWalker struct {
	c          *LifeChecker
	frames     []*lifeFrame
	seen       map[lifeKey]bool
	violations []LifeViolation
	// silent suppresses reporting during loop fixed-point iterations;
	// the loop body is re-walked once in the enclosing mode afterwards.
	silent bool
}

func (w *lifeWalker) report(pos token.Pos, code LifeCode) {
	if w.silent {
		return
	}
	k := lifeKey{pos, code}
	if w.seen[k] {
		return
	}
	w.seen[k] = true
	w.violations = append(w.violations, LifeViolation{Pos: pos, Code: code})
}

// apply transfers the state across one classified leaf node.
func (w *lifeWalker) apply(n ast.Node, st VarState) VarState {
	if n == nil {
		return st
	}
	eff := w.c.Classify(n)
	pos := eff.Pos
	if !pos.IsValid() {
		pos = n.Pos()
	}
	if eff.Use && st&StReleased != 0 {
		w.report(pos, UseAfterRelease)
	}
	if eff.Kill {
		// Rebinding ends the old value's story and tracking restarts
		// live. Kill composes with the other effects: a statement that
		// rebinds the variable to a value that is itself
		// released/obligated (Kill+Release) applies the release to the
		// fresh state, so re-anchoring never reports a double release.
		st = StLive
	}
	if eff.Release {
		switch {
		case st&(StReleased|StDeferReleased) != 0:
			w.report(pos, DoubleRelease)
		case st&StEscaped != 0:
			w.report(pos, ReleaseAfterEscape)
		}
		st = st&^StLive | StReleased
	}
	if eff.DeferRelease {
		if st&(StReleased|StDeferReleased) != 0 {
			w.report(pos, DoubleRelease)
		}
		st |= StDeferReleased
	}
	if eff.Escape {
		st |= StEscaped
	}
	return st
}

func (w *lifeWalker) seq(list []ast.Stmt, in lifeOut) lifeOut {
	out := in
	for _, s := range list {
		if !out.reach {
			return out
		}
		out = w.stmtLabeled(s, "", out)
	}
	return out
}

func (w *lifeWalker) stmtLabeled(s ast.Stmt, label string, in lifeOut) lifeOut {
	if !in.reach {
		return in
	}
	switch s := s.(type) {
	case *ast.LabeledStmt:
		return w.stmtLabeled(s.Stmt, s.Label.Name, in)
	case *ast.BlockStmt:
		return w.seq(s.List, in)
	case *ast.ReturnStmt:
		in.st = w.apply(s, in.st)
		in.reach = false
		return in
	case *ast.BranchStmt:
		return w.branch(s, in)
	case *ast.ExprStmt:
		in.st = w.apply(s, in.st)
		if isTerminalCall(s.X) {
			in.reach = false
		}
		return in
	case *ast.IfStmt:
		return w.ifStmt(s, in)
	case *ast.SwitchStmt:
		if s.Init != nil {
			in = w.stmtLabeled(s.Init, "", in)
		}
		if s.Tag != nil {
			in.st = w.apply(s.Tag, in.st)
		}
		return w.clauses(s.Body, label, true, in)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			in = w.stmtLabeled(s.Init, "", in)
		}
		in = w.stmtLabeled(s.Assign, "", in)
		return w.clauses(s.Body, label, true, in)
	case *ast.SelectStmt:
		return w.clauses(s.Body, label, false, in)
	case *ast.ForStmt:
		return w.forStmt(s, label, in)
	case *ast.RangeStmt:
		return w.rangeStmt(s, label, in)
	default:
		// Assign, IncDec, Decl, Send, Defer, Go, Empty: one leaf.
		in.st = w.apply(s, in.st)
		return in
	}
}

func (w *lifeWalker) ifStmt(s *ast.IfStmt, in lifeOut) lifeOut {
	if s.Init != nil {
		in = w.stmtLabeled(s.Init, "", in)
	}
	if !in.reach {
		return in
	}
	in.st = w.apply(s.Cond, in.st)
	thenOut := w.seq(s.Body.List, in)
	elseOut := in
	if s.Else != nil {
		elseOut = w.stmtLabeled(s.Else, "", in)
	}
	return joinOut(thenOut, elseOut)
}

// branch routes break/continue state into the matching frame. goto
// abandons the path (not used on checked paths); fallthrough is a
// no-op, which over-approximates by also merging the clause's fall
// state into the switch exit.
func (w *lifeWalker) branch(s *ast.BranchStmt, in lifeOut) lifeOut {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if f := w.findFrame(label, false); f != nil {
			f.breakSt |= in.st
			f.breakOK = true
		}
		in.reach = false
	case token.CONTINUE:
		if f := w.findFrame(label, true); f != nil {
			f.contSt |= in.st
			f.contOK = true
		}
		in.reach = false
	case token.GOTO:
		in.reach = false
	}
	return in
}

func (w *lifeWalker) findFrame(label string, loopOnly bool) *lifeFrame {
	for i := len(w.frames) - 1; i >= 0; i-- {
		f := w.frames[i]
		if loopOnly && !f.loop {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (w *lifeWalker) clauses(body *ast.BlockStmt, label string, implicitFallthrough bool, in lifeOut) lifeOut {
	f := &lifeFrame{label: label}
	w.frames = append(w.frames, f)
	hasDefault := false
	out := lifeOut{}
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			st := in.st
			for _, e := range cl.List {
				st = w.apply(e, st)
			}
			out = joinOut(out, w.seq(cl.Body, lifeOut{st: st, reach: true}))
		case *ast.CommClause:
			arm := in
			if cl.Comm != nil {
				arm = w.stmtLabeled(cl.Comm, "", arm)
			}
			out = joinOut(out, w.seq(cl.Body, arm))
		}
	}
	if implicitFallthrough && !hasDefault {
		out = joinOut(out, in)
	}
	w.frames = w.frames[:len(w.frames)-1]
	if f.breakOK {
		out = joinOut(out, lifeOut{st: f.breakSt, reach: true})
	}
	return out
}

// forStmt runs the loop body to a fixed point on the loop-head state
// (silently), then re-walks it once in the enclosing reporting mode.
// The head state only grows under join, so the fixed point lands in a
// handful of iterations.
func (w *lifeWalker) forStmt(s *ast.ForStmt, label string, in lifeOut) lifeOut {
	if s.Init != nil {
		in = w.stmtLabeled(s.Init, "", in)
	}
	if !in.reach {
		return in
	}
	f := &lifeFrame{label: label, loop: true}
	w.frames = append(w.frames, f)
	iterate := func(entry VarState) lifeOut {
		st := entry
		if s.Cond != nil {
			st = w.apply(s.Cond, st)
		}
		out := w.seq(s.Body.List, lifeOut{st: st, reach: true})
		if f.contOK {
			out = joinOut(out, lifeOut{st: f.contSt, reach: true})
		}
		if s.Post != nil && out.reach {
			out = w.stmtLabeled(s.Post, "", out)
		}
		return out
	}
	entry := in.st
	wasSilent := w.silent
	w.silent = true
	for {
		out := iterate(entry)
		next := entry
		if out.reach {
			next |= out.st
		}
		if next == entry {
			break
		}
		entry = next
	}
	w.silent = wasSilent
	iterate(entry)
	w.frames = w.frames[:len(w.frames)-1]

	var res lifeOut
	if s.Cond != nil {
		// Normal exit: the condition fails at the loop head.
		res = lifeOut{st: w.applySilently(s.Cond, entry), reach: true}
	} else {
		res = lifeOut{reach: false} // for{}: exits only via break
	}
	if f.breakOK {
		res = joinOut(res, lifeOut{st: f.breakSt, reach: true})
	}
	return res
}

func (w *lifeWalker) rangeStmt(s *ast.RangeStmt, label string, in lifeOut) lifeOut {
	in.st = w.apply(s.X, in.st)
	f := &lifeFrame{label: label, loop: true}
	w.frames = append(w.frames, f)
	rebinds := w.c.Rebinds != nil && w.c.Rebinds(s)
	iterate := func(entry VarState) lifeOut {
		st := entry
		if rebinds {
			st = StLive
		}
		out := w.seq(s.Body.List, lifeOut{st: st, reach: true})
		if f.contOK {
			out = joinOut(out, lifeOut{st: f.contSt, reach: true})
		}
		return out
	}
	entry := in.st
	wasSilent := w.silent
	w.silent = true
	for {
		out := iterate(entry)
		next := entry
		if out.reach {
			next |= out.st
		}
		if next == entry {
			break
		}
		entry = next
	}
	w.silent = wasSilent
	iterate(entry)
	w.frames = w.frames[:len(w.frames)-1]

	// Normal exit is at the loop head with the fixed-point state: after
	// `for _, s := range fs { s.flow.Release() }`, the range variable
	// still holds the last element and its flow is released.
	res := lifeOut{st: entry, reach: true}
	if f.breakOK {
		res = joinOut(res, lifeOut{st: f.breakSt, reach: true})
	}
	return res
}

// applySilently evaluates a transfer without reporting (used for the
// already-reported loop-exit re-evaluation of the condition).
func (w *lifeWalker) applySilently(n ast.Node, st VarState) VarState {
	wasSilent := w.silent
	w.silent = true
	st = w.apply(n, st)
	w.silent = wasSilent
	return st
}
