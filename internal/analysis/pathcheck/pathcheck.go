// Package pathcheck walks the statement-structured control flow of a
// function body to decide whether an obligation created at some
// statement (a journal checkpoint, an open trace span) is settled on
// every path that leaves the function. It is deliberately a structured
// walk over the AST — if/switch/select branches merge, loops are
// handled conservatively, defer settles the rest of the function —
// rather than a basic-block CFG: the repo's functions are structured
// Go, and the structured walk gives byte-for-byte predictable reports.
package pathcheck

import (
	"go/ast"
	"go/token"
)

// Checker is supplied by the analyzer.
type Checker struct {
	// Settles reports whether the statement discharges the obligation
	// (e.g. a Rollback/DropJournal call on the right receiver, or
	// sp.End()). It receives the bare statement; defer is unwrapped by
	// the walker before calling it.
	Settles func(ast.Stmt) bool
	// Escapes reports whether the statement passes the tracked value
	// somewhere the walker cannot follow (assigned away, passed to a
	// function, returned). An escape makes the walker assume the
	// obligation is handled elsewhere and stop reporting.
	Escapes func(ast.Stmt) bool
	// LenientLoops, when set, treats a for/range statement whose body
	// settles the obligation on its fall-through path as settling after
	// the loop. The journal analyzer needs this: checkpoint-per-
	// iteration code rolls back inside the loop body, and the
	// obligation created before the loop is a different one per
	// iteration.
	LenientLoops bool
}

// outcome of walking a statement sequence.
type outcome struct {
	// fallsThrough: control can reach the statement after the sequence.
	fallsThrough bool
	// settled: on the fall-through path, the obligation is discharged.
	settled bool
	// escaped: the tracked value escaped; stop checking this path.
	escaped bool
}

// Violation is a path on which the obligation is never settled.
type Violation struct {
	// Pos locates the leak: the return statement that leaves the
	// function with the obligation open, or the function's closing
	// brace for fall-off-the-end.
	Pos token.Pos
	// AtReturn is true when the leak is at an explicit return.
	AtReturn bool
}

// Check walks the function body from the statement immediately after
// the anchor (the statement that created the obligation) and returns
// every leaking exit. enclosing must be the innermost-to-outermost
// chain of blocks/statements containing the anchor, as produced by
// Path. body is the function body, used for the fall-off-the-end
// position.
func Check(c *Checker, body *ast.BlockStmt, path []ast.Node, anchor ast.Stmt) []Violation {
	w := &walker{c: c}
	out := w.after(path, anchor)
	if out.escaped {
		return w.violations
	}
	if out.fallsThrough && !out.settled {
		w.violations = append(w.violations, Violation{Pos: body.Rbrace})
	}
	return w.violations
}

// Path returns the chain of statement-list-owning nodes (blocks and
// switch/select clauses) from the function body down to the one whose
// list contains the anchor, outermost first, or nil if the anchor is
// not inside body. AST spans nest, so positional containment in
// preorder yields exactly that chain.
func Path(body *ast.BlockStmt, anchor ast.Stmt) []ast.Node {
	var chain []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > anchor.Pos() || n.End() < anchor.End() {
			return false
		}
		if n != anchor && stmtList(n) != nil {
			chain = append(chain, n)
		}
		return true
	})
	if len(chain) == 0 || !containsStmt(stmtList(chain[0]), anchor) {
		return nil
	}
	return chain
}

// containsStmt reports whether anchor lies positionally within one of
// the statements in list.
func containsStmt(list []ast.Stmt, anchor ast.Stmt) bool {
	for _, s := range list {
		if s.Pos() <= anchor.Pos() && anchor.End() <= s.End() {
			return true
		}
	}
	return false
}

// stmtList returns the statement list a node directly owns, or nil.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

type walker struct {
	c          *walkChecker
	violations []Violation
}

// walkChecker aliases Checker so the walker reads naturally.
type walkChecker = Checker

// after walks from the anchor to the end of the function: first the
// statements following the anchor in its own list, then — if control
// falls through still unsettled — the remainder of each enclosing
// construct, outwards.
func (w *walker) after(path []ast.Node, anchor ast.Stmt) outcome {
	out := outcome{fallsThrough: true}
	for i := len(path) - 1; i >= 0; i-- {
		rest := stmtsAfter(stmtList(path[i]), anchor)
		out = w.seq(rest, out)
		if !out.fallsThrough || out.settled || out.escaped {
			return out
		}
		// Bubble out to the remainder of the next-outer statement list.
		// An obligation still open at the end of an if/switch arm is
		// still open after the construct; an obligation created inside
		// a loop body that reaches the body's end unsettled is treated
		// as continuing after the loop (conservative for the first
		// iteration, exact for the last).
	}
	return out
}

// stmtsAfter returns the statements strictly after the one containing
// marker (by position) in list.
func stmtsAfter(list []ast.Stmt, marker ast.Node) []ast.Stmt {
	for i, s := range list {
		if s.Pos() <= marker.Pos() && marker.End() <= s.End() {
			return list[i+1:]
		}
	}
	return nil
}

// seq walks a statement sequence with the incoming state and returns
// the state at its end.
func (w *walker) seq(stmts []ast.Stmt, in outcome) outcome {
	out := in
	for _, s := range stmts {
		if !out.fallsThrough || out.settled || out.escaped {
			return out
		}
		out = w.stmt(s, out)
	}
	return out
}

// stmt transfers the state across one statement.
func (w *walker) stmt(s ast.Stmt, in outcome) outcome {
	if w.c.Escapes != nil && w.c.Escapes(s) {
		in.escaped = true
		return in
	}
	switch s := s.(type) {
	case *ast.ReturnStmt:
		w.violations = append(w.violations, Violation{Pos: s.Pos(), AtReturn: true})
		in.fallsThrough = false
		return in
	case *ast.BranchStmt:
		// break/continue/goto leave this walk; per-iteration balance is
		// the loop's concern and goto is not used on these paths.
		in.fallsThrough = false
		return in
	case *ast.DeferStmt:
		if w.c.Settles != nil && w.c.Settles(&ast.ExprStmt{X: s.Call}) {
			in.settled = true
		}
		return in
	case *ast.ExprStmt:
		if isTerminalCall(s.X) {
			in.fallsThrough = false
			return in
		}
		if w.c.Settles != nil && w.c.Settles(s) {
			in.settled = true
		}
		return in
	case *ast.BlockStmt:
		return w.seq(s.List, in)
	case *ast.IfStmt:
		return w.ifStmt(s, in)
	case *ast.SwitchStmt:
		return w.clauses(s.Body, true, in)
	case *ast.TypeSwitchStmt:
		return w.clauses(s.Body, true, in)
	case *ast.SelectStmt:
		return w.clauses(s.Body, false, in)
	case *ast.ForStmt:
		return w.loop(s.Body, in)
	case *ast.RangeStmt:
		return w.loop(s.Body, in)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, in)
	default:
		// Assignments, declarations, sends, inc/dec: check Settles for
		// call-bearing forms (e.g. `_ = f.Rollback(m)` is not idiomatic
		// here, so only ExprStmt settles), otherwise neutral.
		if w.c.Settles != nil && w.c.Settles(s) {
			in.settled = true
		}
		return in
	}
}

func (w *walker) ifStmt(s *ast.IfStmt, in outcome) outcome {
	thenOut := w.seq(s.Body.List, in)
	elseOut := in // no else: fall through unchanged
	if s.Else != nil {
		elseOut = w.stmt(s.Else, in)
	}
	return merge(thenOut, elseOut)
}

// clauses merges the arms of a switch/type-switch/select. For switch
// statements without a default clause the implicit no-match path falls
// through unchanged.
func (w *walker) clauses(body *ast.BlockStmt, implicitFallthrough bool, in outcome) outcome {
	hasDefault := false
	var outs []outcome
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			outs = append(outs, w.seq(cl.Body, in))
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			outs = append(outs, w.seq(cl.Body, in))
		}
	}
	if implicitFallthrough && !hasDefault {
		outs = append(outs, in)
	}
	if len(outs) == 0 {
		return in
	}
	out := outs[0]
	for _, o := range outs[1:] {
		out = merge(out, o)
	}
	return out
}

// loop walks a loop body. The walk inside the body starts from the
// incoming state; a leak reported by a return inside the body is real
// on the first iteration, so body returns are checked normally. After
// the loop, the obligation is considered settled only under
// LenientLoops when the body's fall path settles it.
func (w *walker) loop(body *ast.BlockStmt, in outcome) outcome {
	bodyOut := w.seq(body.List, in)
	out := in
	if w.c.LenientLoops && bodyOut.settled {
		out.settled = true
	}
	if bodyOut.escaped {
		out.escaped = true
	}
	return out
}

// merge combines two branch outcomes at a join point.
func merge(a, b outcome) outcome {
	out := outcome{
		fallsThrough: a.fallsThrough || b.fallsThrough,
		escaped:      a.escaped || b.escaped,
	}
	switch {
	case a.fallsThrough && b.fallsThrough:
		out.settled = a.settled && b.settled
	case a.fallsThrough:
		out.settled = a.settled
	case b.fallsThrough:
		out.settled = b.settled
	}
	return out
}

// isTerminalCall reports calls that never return: panic, os.Exit,
// runtime.Goexit, (*testing.T).Fatal...
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			if pkg.Name == "os" && fun.Sel.Name == "Exit" {
				return true
			}
			if pkg.Name == "runtime" && fun.Sel.Name == "Goexit" {
				return true
			}
			if pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf") {
				return true
			}
		}
	}
	return false
}
