// Package sharecap guards the repo's parallel-loop discipline: a
// closure handed to par.ForEach / ForEachCtx / ForEachChunkedCtx — or
// spawned with a go statement inside internal/see or internal/core —
// runs concurrently with its siblings, so writing a captured variable
// from inside one is a data race unless the write goes through the
// per-chunk scratch/bucket discipline (indexing a shared slice by a
// closure-local index), a mutex, or an atomic.
//
// The analyzer flags assignments, inc/dec and appends whose target
// decomposes to a variable captured from the enclosing function. An
// indexed write whose index expression mentions a closure-local
// variable is the sanctioned per-slot pattern (out[i] = ..., one slot
// per worker) and passes. A write positionally preceded by a .Lock()
// call in the same closure is treated as mutex-guarded. Atomic
// updates are method/function calls, not assignments, so they pass
// naturally. This is the class of bug TestParallelExpansionStress can
// only catch probabilistically; here it is structural.
package sharecap

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

const parPath = "repro/internal/par"

// goScopes lists the package-path suffixes in which bare go statements
// are held to the same captured-write discipline. see and core own the
// deterministic parallel solve; goroutines elsewhere (the service
// worker pool, the driver) have their own synchronization idioms.
var goScopes = []string{"internal/see", "internal/core"}

// parEntry names the par entrypoints whose final argument is a worker
// closure.
var parEntry = map[string]bool{
	"ForEach":           true,
	"ForEachCtx":        true,
	"ForEachChunkedCtx": true,
}

// Analyzer flags unsynchronized writes to captured variables in
// parallel closures.
var Analyzer = &analysis.Analyzer{
	Name: "sharecap",
	Doc:  "closures run by internal/par or spawned in see/core must not write captured variables without per-chunk, atomic or mutex discipline",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	inGoScope := false
	for _, scope := range goScopes {
		if analysis.PathMatches(pass.Pkg.Path(), scope) {
			inGoScope = true
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := analysis.Callee(pass.Info, n); fn != nil && parEntry[fn.Name()] &&
					fn.Pkg() != nil && analysis.PathMatches(fn.Pkg().Path(), parPath) && len(n.Args) > 0 {
					if lit, ok := n.Args[len(n.Args)-1].(*ast.FuncLit); ok {
						checkClosure(pass, lit, "closure passed to par."+fn.Name())
					}
				}
			case *ast.GoStmt:
				if inGoScope {
					if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
						checkClosure(pass, lit, "goroutine closure")
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkClosure(pass *analysis.Pass, lit *ast.FuncLit, what string) {
	locals := localObjects(pass.Info, lit)
	lockPositions := collectLocks(lit)
	check := func(target ast.Expr, pos token.Pos) {
		name, captured := capturedTarget(pass.Info, locals, target)
		if !captured {
			return
		}
		for _, lp := range lockPositions {
			if lp < pos {
				return // a Lock() ran earlier in this closure body
			}
		}
		pass.Reportf(pos, "%s writes captured variable %s without per-chunk, atomic or mutex discipline", what, name)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				check(l, n.Pos())
			}
		case *ast.IncDecStmt:
			check(n.X, n.Pos())
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				check(n.Key, n.Pos())
				check(n.Value, n.Pos())
			}
		}
		return true
	})
}

// localObjects collects every object declared inside the closure:
// parameters, named results, and all := / var / range definitions,
// including those of nested literals.
func localObjects(info *types.Info, lit *ast.FuncLit) map[types.Object]bool {
	locals := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				locals[obj] = true
			}
		}
		return true
	})
	return locals
}

// collectLocks records the position of every .Lock() call in the
// closure body: a captured write after one is treated as guarded.
func collectLocks(lit *ast.FuncLit) []token.Pos {
	var out []token.Pos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Lock" {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

// capturedTarget decomposes a write target and reports whether it
// bottoms out at a variable captured from the enclosing function. An
// index step whose index mentions a closure-local variable sanctions
// the write (the per-slot discipline: each worker owns its slots).
func capturedTarget(info *types.Info, locals map[types.Object]bool, e ast.Expr) (string, bool) {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			if t.Name == "_" {
				return "", false
			}
			obj := info.ObjectOf(t)
			if obj == nil || locals[obj] {
				return "", false
			}
			if _, ok := obj.(*types.Var); !ok {
				return "", false
			}
			return t.Name, true
		case *ast.IndexExpr:
			// The per-slot sanction only holds for slices and arrays:
			// distinct indexes are distinct memory. Concurrent map
			// writes race even on distinct keys.
			if mentionsLocal(info, locals, t.Index) && !isMapIndex(info, t) {
				return "", false
			}
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return "", false
		}
	}
}

func isMapIndex(info *types.Info, idx *ast.IndexExpr) bool {
	t := info.TypeOf(idx.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func mentionsLocal(info *types.Info, locals map[types.Object]bool, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && locals[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
