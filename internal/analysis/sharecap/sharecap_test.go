package sharecap_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/sharecap"
)

func TestShareCap(t *testing.T) {
	antest.Run(t, antest.TestData(), sharecap.Analyzer, "sharecap", "sharecap/internal/see")
}

func TestShareCapFires(t *testing.T) {
	antest.MustFire(t, antest.TestData(), sharecap.Analyzer, "sharecap")
}
