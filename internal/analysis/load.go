package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked source package.
type Package struct {
	Path  string // import path ("repro/internal/pg")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without the go command:
// module-local import paths resolve to source directories under
// ModuleDir, ExtraSrc roots resolve GOPATH-style (root/<import path>,
// used for analysistest-like fixture trees), and everything else falls
// back to the standard library compiled... from source via go/importer's
// "source" compiler, which works offline against GOROOT.
//
// Test files (_test.go) are never loaded: the suite lints production
// code, and fixtures that intentionally violate invariants live under
// testdata where the go tool ignores them anyway.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string // module path from go.mod; "" disables module resolution
	ModuleDir  string
	ExtraSrc   []string // fixture roots searched before the module

	pkgs    map[string]*Package
	loading map[string]bool
	std     types.ImporterFrom
}

// NewLoader returns a loader rooted at moduleDir. The module path is
// read from moduleDir/go.mod when present.
func NewLoader(moduleDir string, extraSrc ...string) *Loader {
	l := &Loader{
		Fset:      token.NewFileSet(),
		ModuleDir: moduleDir,
		ExtraSrc:  extraSrc,
		pkgs:      map[string]*Package{},
		loading:   map[string]bool{},
	}
	if moduleDir != "" {
		l.ModulePath = modulePath(filepath.Join(moduleDir, "go.mod"))
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom)
	return l
}

// modulePath extracts the module path from a go.mod file ("" if the
// file is unreadable or malformed).
func modulePath(gomod string) string {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// Load returns the package with the given import path, loading it (and
// its transitive imports) on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.resolveDir(path)
	if !ok {
		return nil, fmt.Errorf("analysis: cannot resolve import %q to a source directory", path)
	}
	return l.loadDir(path, dir)
}

// resolveDir maps an import path to a source directory via the fixture
// roots, then the module.
func (l *Loader) resolveDir(path string) (string, bool) {
	for _, root := range l.ExtraSrc {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleDir, hasGoFiles(l.ModuleDir)
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
			return dir, hasGoFiles(dir)
		}
	}
	return "", false
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the package in dir under the given
// import path.
func (l *Loader) loadDir(path, dir string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %v", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %v", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// loaderImporter adapts the Loader to types.ImporterFrom.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if dir, ok := l.resolveDir(path); ok {
		p, err := l.loadDir(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// FuncDoc returns the doc comment of fn when it was declared in a
// package this loader parsed from source ("" otherwise). Implements
// DocSource.
func (l *Loader) FuncDoc(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	p, ok := l.pkgs[fn.Pkg().Path()]
	if !ok {
		return ""
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Pos() != fn.Pos() {
				continue
			}
			if fd.Doc == nil {
				return ""
			}
			return fd.Doc.Text()
		}
	}
	return ""
}

// ModulePackages returns the import paths of every package under the
// module root that contains non-test Go files, skipping testdata,
// hidden directories and vendor. This is hcalint's "./..." expansion.
func (l *Loader) ModulePackages() ([]string, error) {
	if l.ModulePath == "" {
		return nil, fmt.Errorf("analysis: loader has no module")
	}
	var out []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModulePath)
		} else {
			out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
