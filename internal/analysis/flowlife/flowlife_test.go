package flowlife_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/flowlife"
)

func TestFlowLife(t *testing.T) {
	antest.Run(t, antest.TestData(), flowlife.Analyzer, "flowlife")
}

func TestFlowLifeFires(t *testing.T) {
	antest.MustFire(t, antest.TestData(), flowlife.Analyzer, "flowlife")
}
