// Package flowlife tracks pg.Flow values through all-paths walks of
// each function body and reports lifecycle violations against the slab
// recycler: using a flow after Release, releasing a flow twice, and
// releasing a flow that has already escaped to another owner. It also
// checks the pool-borrow obligation: a flow obtained from a pool Get
// must be Released or Put back on every path that does not hand it off.
//
// Release returns a flow's backing arrays to the per-class slab free
// lists, so every one of these mistakes is silent state corruption in
// a later solve rather than a crash — exactly the class of bug the
// race detector and stress tests can only catch probabilistically.
//
// The analyzer is deliberately per-function and alias-light: it tracks
// the exact receiver expression of each Release call (an identifier by
// object, a field path like s.bestFlow by printed form). Passing a
// flow as a plain call argument is not an escape — the repo convention
// is callee-borrows — but returning it, storing it into a struct,
// slice, map or channel, or capturing it in a go/defer closure is.
package flowlife

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/pathcheck"
)

const pgPath = "repro/internal/pg"

// Analyzer flags flow lifecycle violations.
var Analyzer = &analysis.Analyzer{
	Name: "flowlife",
	Doc:  "track pg.Flow lifecycles: no use-after-Release, no double-Release, no release of escaped flows, pool borrows released on every path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// root is one tracked value: the receiver of a Release call. An
// identifier is tracked by its types.Object; a longer path (s.f,
// out.flow) by its printed form plus its base identifier.
type root struct {
	text string
	base string
	obj  types.Object
}

// matches reports whether e is exactly the tracked expression.
func (r *root) matches(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if r.obj != nil {
		id, ok := e.(*ast.Ident)
		return ok && info.ObjectOf(id) == r.obj
	}
	sel, ok := e.(*ast.SelectorExpr)
	return ok && types.ExprString(sel) == r.text
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	roots := collectRoots(pass, body)
	for _, r := range roots {
		lc := &pathcheck.LifeChecker{
			Classify: classifier(pass, r),
			Rebinds:  rebinder(pass, r),
		}
		for _, v := range pathcheck.CheckLife(lc, body) {
			switch v.Code {
			case pathcheck.UseAfterRelease:
				pass.Reportf(v.Pos, "flow %s may be used after Release; its arrays are back on the slab free lists", r.text)
			case pathcheck.DoubleRelease:
				pass.Reportf(v.Pos, "flow %s may be released twice", r.text)
			case pathcheck.ReleaseAfterEscape:
				pass.Reportf(v.Pos, "flow %s escapes before this Release; the escaped reference would dangle", r.text)
			}
		}
	}
	checkBorrows(pass, body)
}

// collectRoots finds the receiver of every Flow.Release call directly
// in body (nested function literals are their own bodies), deduplicated
// and ordered by first appearance.
func collectRoots(pass *analysis.Pass, body *ast.BlockStmt) []*root {
	byKey := make(map[string]*root)
	pos := make(map[string]token.Pos)
	inspectOwn(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isReleaseCallee(pass.Info, call) {
			return
		}
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		recv := ast.Unparen(sel.X)
		r := rootFor(pass.Info, recv)
		if r == nil {
			return
		}
		key := r.text
		if r.obj != nil {
			key = "obj:" + r.text
		}
		if _, ok := byKey[key]; !ok {
			byKey[key] = r
			pos[key] = call.Pos()
		}
	})
	out := make([]*root, 0, len(byKey))
	for _, r := range byKey {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := out[i].text, out[j].text
		if out[i].obj != nil {
			ki = "obj:" + ki
		}
		if out[j].obj != nil {
			kj = "obj:" + kj
		}
		return pos[ki] < pos[kj]
	})
	return out
}

func rootFor(info *types.Info, recv ast.Expr) *root {
	switch recv := recv.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(recv)
		if obj == nil {
			return nil
		}
		return &root{text: recv.Name, base: recv.Name, obj: obj}
	case *ast.SelectorExpr:
		base := baseIdent(recv)
		if base == nil {
			return nil
		}
		return &root{text: types.ExprString(recv), base: base.Name}
	}
	return nil
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isReleaseCallee(info *types.Info, call *ast.CallExpr) bool {
	if _, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); !ok {
		return false
	}
	return analysis.IsMethodOn(analysis.Callee(info, call), pgPath, "Flow", "Release")
}

// inspectOwn visits every node of body except nested function literals.
func inspectOwn(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// classifier builds the lattice transfer function for one root.
func classifier(pass *analysis.Pass, r *root) func(ast.Node) pathcheck.Effect {
	return func(n ast.Node) pathcheck.Effect {
		sc := &scanner{info: pass.Info, r: r}
		switch s := n.(type) {
		case *ast.AssignStmt:
			sc.assign(s)
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				sc.expr(res, true)
			}
		case *ast.SendStmt:
			sc.expr(s.Chan, false)
			sc.expr(s.Value, true)
		case *ast.IncDecStmt:
			sc.expr(s.X, false)
		case *ast.DeclStmt:
			sc.decl(s)
		case *ast.ExprStmt:
			sc.expr(s.X, false)
		case *ast.DeferStmt:
			sc.deferred = true
			sc.expr(s.Call, false)
		case *ast.GoStmt:
			// The spawned goroutine runs concurrently: any mention of
			// the root inside the call (argument or capture) escapes.
			if mentions(pass.Info, r, s.Call) {
				sc.eff.Use = true
				sc.eff.Escape = true
			}
		case ast.Expr:
			// Control-clause expression: condition, switch tag, range
			// operand, case expression.
			sc.expr(s, false)
		}
		return sc.eff
	}
}

// rebinder reports range statements whose key/value clause rebinds the
// root's variable each iteration (`for _, s := range fs` while
// tracking s.flow): the body starts from a fresh live value.
func rebinder(pass *analysis.Pass, r *root) func(*ast.RangeStmt) bool {
	return func(s *ast.RangeStmt) bool {
		if s.Tok != token.DEFINE && s.Tok != token.ASSIGN {
			return false
		}
		for _, v := range []ast.Expr{s.Key, s.Value} {
			id, ok := v.(*ast.Ident)
			if !ok {
				continue
			}
			if r.obj != nil && pass.Info.ObjectOf(id) == r.obj {
				return true
			}
			if r.obj == nil && id.Name == r.base {
				return true
			}
		}
		return false
	}
}

// mentions reports whether n references the root anywhere (including a
// bare mention of a member root's base identifier — capturing the
// whole struct captures the member).
func mentions(info *types.Info, r *root, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if r.obj != nil {
				if info.ObjectOf(n) == r.obj {
					found = true
				}
			} else if n.Name == r.base {
				found = true
			}
		}
		return !found
	})
	return found
}

// scanner accumulates the effect of one statement's expressions on one
// root. The valuePos flag on expr means "if the root itself appears
// here, its value flows into a sink that outlives this statement" —
// set for return results, stored assignment RHS, sends, and composite
// literal elements; cleared when recursion passes through a call
// (the call consumes the value; its result is a different value).
type scanner struct {
	info     *types.Info
	r        *root
	eff      pathcheck.Effect
	deferred bool
}

func (sc *scanner) mention(escapes bool) {
	sc.eff.Use = true
	if escapes {
		sc.eff.Escape = true
	}
}

func (sc *scanner) assign(s *ast.AssignStmt) {
	for _, l := range s.Lhs {
		if sc.kills(l) {
			sc.eff.Kill = true
		} else {
			// Non-rebinding lvalue: indexes and bases may read the root
			// (m[f] = 1), but the lvalue path itself is not a use.
			if idx, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
				sc.expr(idx.Index, false)
			}
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Rhs {
			sc.expr(s.Rhs[i], isStoreTarget(s.Lhs[i]))
		}
		return
	}
	store := false
	for _, l := range s.Lhs {
		if isStoreTarget(l) {
			store = true
		}
	}
	for _, rhs := range s.Rhs {
		sc.expr(rhs, store)
	}
}

// isStoreTarget: assigning through a selector, index or dereference
// stores the value somewhere that outlives the local frame; assigning
// to a plain identifier only rebinds a local.
func isStoreTarget(l ast.Expr) bool {
	switch ast.Unparen(l).(type) {
	case *ast.Ident:
		return false
	}
	return true
}

// kills reports whether assigning to l rebinds the root: the root
// expression itself, its base identifier (rebinding out rebinds
// out.flow), or a strict prefix of its path.
func (sc *scanner) kills(l ast.Expr) bool {
	l = ast.Unparen(l)
	if sc.r.obj != nil {
		id, ok := l.(*ast.Ident)
		return ok && sc.info.ObjectOf(id) == sc.r.obj
	}
	switch l := l.(type) {
	case *ast.Ident:
		return l.Name == sc.r.base
	case *ast.SelectorExpr:
		t := types.ExprString(l)
		return t == sc.r.text || strings.HasPrefix(sc.r.text, t+".")
	}
	return false
}

func (sc *scanner) decl(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			if sc.r.obj != nil {
				if sc.info.ObjectOf(name) == sc.r.obj {
					sc.eff.Kill = true
				}
			} else if name.Name == sc.r.base {
				sc.eff.Kill = true
			}
		}
		for _, v := range vs.Values {
			sc.expr(v, false)
		}
	}
}

func (sc *scanner) expr(e ast.Expr, valuePos bool) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		if sc.r.obj != nil {
			if sc.info.ObjectOf(e) == sc.r.obj {
				sc.mention(valuePos)
			}
			return
		}
		if e.Name == sc.r.base {
			// Bare mention of a member root's base: the whole struct
			// (and the member with it) flows here.
			sc.mention(valuePos)
		}
	case *ast.SelectorExpr:
		if sc.r.matches(sc.info, e) {
			sc.mention(valuePos)
			return
		}
		// A different member of the same base is not a use of the
		// root; only descend past the selector when the base is itself
		// a compound expression.
		if _, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if sc.r.obj != nil && sc.r.matches(sc.info, e.X) {
				// Field access or method value on the tracked ident.
				sc.mention(false)
			}
			return
		}
		sc.expr(e.X, false)
	case *ast.CallExpr:
		if sc.release(e) {
			for _, a := range e.Args {
				sc.expr(a, false)
			}
			return
		}
		sc.expr(e.Fun, false)
		isAppend := false
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			isAppend = true
		}
		for i, a := range e.Args {
			// append(dst, f) stores the flow into a slice.
			sc.expr(a, isAppend && i > 0)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			sc.expr(el, true)
		}
	case *ast.KeyValueExpr:
		sc.expr(e.Value, valuePos)
	case *ast.ParenExpr:
		sc.expr(e.X, valuePos)
	case *ast.UnaryExpr:
		sc.expr(e.X, valuePos)
	case *ast.StarExpr:
		sc.expr(e.X, valuePos)
	case *ast.FuncLit:
		if mentions(sc.info, sc.r, e.Body) {
			if sc.deferred && releasesRoot(sc.info, sc.r, e.Body) {
				// defer func() { f.Release() }(): a deferred release.
				sc.eff.DeferRelease = true
				return
			}
			sc.mention(true)
		}
	case *ast.BinaryExpr:
		sc.expr(e.X, false)
		sc.expr(e.Y, false)
	case *ast.IndexExpr:
		sc.expr(e.X, false)
		sc.expr(e.Index, false)
	case *ast.SliceExpr:
		sc.expr(e.X, false)
		sc.expr(e.Low, false)
		sc.expr(e.High, false)
		sc.expr(e.Max, false)
	case *ast.TypeAssertExpr:
		sc.expr(e.X, valuePos)
	default:
		// Remaining expression forms (type expressions, literals) do
		// not carry the root.
	}
}

// release recognizes <root>.Release() and records it as a (possibly
// deferred) release rather than a use.
func (sc *scanner) release(call *ast.CallExpr) bool {
	if !isReleaseCallee(sc.info, call) {
		return false
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !sc.r.matches(sc.info, sel.X) {
		return false
	}
	if sc.deferred {
		sc.eff.DeferRelease = true
	} else {
		sc.eff.Release = true
	}
	return true
}

// releasesRoot reports whether body contains <root>.Release().
func releasesRoot(info *types.Info, r *root, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isReleaseCallee(info, call) {
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if r.matches(info, sel.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkBorrows enforces the pool-borrow obligation: `x := pool.Get()`
// (any method named Get returning *pg.Flow) must reach x.Release() or
// a Put(x) on every path, unless x is handed off (returned, stored,
// captured) — then ownership moved and the walk stops.
func checkBorrows(pass *analysis.Pass, body *ast.BlockStmt) {
	inspectOwn(body, func(n ast.Node) {
		anchor, ok := n.(*ast.AssignStmt)
		if !ok || len(anchor.Lhs) != 1 || len(anchor.Rhs) != 1 {
			return
		}
		id, ok := ast.Unparen(anchor.Lhs[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		call, ok := ast.Unparen(anchor.Rhs[0]).(*ast.CallExpr)
		if !ok || !isPoolGet(pass.Info, call) {
			return
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return
		}
		r := &root{text: id.Name, base: id.Name, obj: obj}
		chk := &pathcheck.Checker{
			Settles: func(s ast.Stmt) bool { return settlesBorrow(pass.Info, r, s) },
			Escapes: func(s ast.Stmt) bool {
				eff := classifier(pass, r)(s)
				return eff.Escape || eff.Kill
			},
			LenientLoops: true,
		}
		path := pathcheck.Path(body, anchor)
		if path == nil {
			return
		}
		for _, v := range pathcheck.Check(chk, body, path, anchor) {
			where := "at function end"
			if v.AtReturn {
				where = "at this return"
			}
			pass.Reportf(v.Pos, "pool-borrowed flow %s is not released or returned to the pool %s", id.Name, where)
		}
	})
}

// isPoolGet: a call to a method named Get whose single result is
// *pg.Flow.
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Name() != "Get" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return false
	}
	ptr, ok := sig.Results().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Flow" || named.Obj().Pkg() == nil {
		return false
	}
	return analysis.PathMatches(named.Obj().Pkg().Path(), pgPath)
}

// settlesBorrow: x.Release(), or any call passing x to a method named
// Put (the pool hand-back).
func settlesBorrow(info *types.Info, r *root, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	if isReleaseCallee(info, call) {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return r.matches(info, sel.X)
	}
	if fn := analysis.Callee(info, call); fn != nil && fn.Name() == "Put" {
		for _, a := range call.Args {
			if r.matches(info, a) {
				return true
			}
		}
	}
	return false
}
