package journalbalance_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/journalbalance"
)

func TestJournalBalance(t *testing.T) {
	antest.Run(t, antest.TestData(), journalbalance.Analyzer, "journalbalance")
}

func TestJournalBalanceFires(t *testing.T) {
	antest.MustFire(t, antest.TestData(), journalbalance.Analyzer, "journalbalance")
}
