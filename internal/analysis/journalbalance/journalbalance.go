// Package journalbalance checks that every pg.Flow.Checkpoint is
// balanced: on every path from the checkpoint to a function exit the
// flow is either rolled back to the mark (Rollback), its journal is
// retired wholesale (DropJournal), rebuilt (CopyFrom, which resets
// the journal), or released back to the slab (Release, which retires
// the journal with everything else — the flow no longer exists, so
// neither does the obligation). An unbalanced checkpoint leaves the
// journal growing across solver iterations — exactly the class of bug
// the incremental assign/rollback engine cannot tolerate, and one a
// profiler only surfaces as slow memory creep.
//
// The check is per-receiver and textual: the settle call must name the
// same receiver expression as the checkpoint. Marks that escape (are
// returned or passed to another function) are assumed balanced by the
// consumer.
package journalbalance

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/pathcheck"
)

var Analyzer = &analysis.Analyzer{
	Name: "journalbalance",
	Doc:  "every pg.Flow.Checkpoint must be balanced by Rollback/DropJournal (or retired by Release) on all paths",
	Run:  run,
}

const pgPath = "repro/internal/pg"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

// checkBody analyzes one function body; nested closures are analyzed
// as their own functions (their returns exit the closure, not the
// enclosing function).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkBody(pass, lit.Body)
			return false
		}
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		recv, markObj, ok := checkpointAnchor(pass.Info, stmt)
		if !ok {
			return true
		}
		path := pathcheck.Path(body, stmt)
		if path == nil {
			return true
		}
		c := &pathcheck.Checker{
			Settles:      func(s ast.Stmt) bool { return settles(pass.Info, s, recv) },
			Escapes:      func(s ast.Stmt) bool { return markEscapes(pass.Info, s, recv, markObj) },
			LenientLoops: true,
		}
		for _, v := range pathcheck.Check(c, body, path, stmt) {
			where := "function falls off the end"
			if v.AtReturn {
				where = "return reached"
			}
			pass.Reportf(v.Pos, "%s with checkpoint on %s unsettled: balance it with %s.Rollback(mark) or %s.DropJournal()", where, recv, recv, recv)
		}
		return true
	})
}

// checkpointAnchor recognizes `mark := recv.Checkpoint()` (also plain
// assignment and the discarded-result forms) and returns the receiver
// text and the mark object when one is bound.
func checkpointAnchor(info *types.Info, stmt ast.Stmt) (recv string, mark types.Object, ok bool) {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return "", nil, false
		}
		call, _ = ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if call != nil && len(s.Lhs) == 1 {
			if id, isIdent := s.Lhs[0].(*ast.Ident); isIdent && id.Name != "_" {
				mark = info.Defs[id]
				if mark == nil {
					mark = info.Uses[id]
				}
			}
		}
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	default:
		return "", nil, false
	}
	if call == nil {
		return "", nil, false
	}
	fn := analysis.Callee(info, call)
	if !analysis.IsMethodOn(fn, pgPath, "Flow", "Checkpoint") {
		return "", nil, false
	}
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", nil, false
	}
	return types.ExprString(sel.X), mark, true
}

// settles reports Rollback/DropJournal/CopyFrom on the same receiver.
func settles(info *types.Info, s ast.Stmt, recv string) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.Callee(info, call)
	if fn == nil {
		return false
	}
	if !analysis.IsMethodOn(fn, pgPath, "Flow", "Rollback") &&
		!analysis.IsMethodOn(fn, pgPath, "Flow", "DropJournal") &&
		!analysis.IsMethodOn(fn, pgPath, "Flow", "CopyFrom") &&
		!analysis.IsMethodOn(fn, pgPath, "Flow", "Release") {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return types.ExprString(sel.X) == recv
}

// markEscapes reports statements that move the mark somewhere the
// walker cannot follow — returned, stored, or passed to a callee other
// than the balancing Rollback.
func markEscapes(info *types.Info, s ast.Stmt, recv string, mark types.Object) bool {
	if mark == nil {
		return false
	}
	if d, ok := s.(*ast.DeferStmt); ok {
		s = &ast.ExprStmt{X: d.Call}
	}
	if settles(info, s, recv) {
		return false
	}
	// Only leaf statements can escape; compound statements are walked
	// structurally and their leaves re-checked.
	switch s.(type) {
	case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
		return false
	}
	used := false
	ast.Inspect(s, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == mark {
			used = true
			return false
		}
		return !used
	})
	return used
}
