// Package antest is an analysistest-shaped fixture runner for the
// stdlib-only analysis framework. Fixture packages live in a
// GOPATH-style tree (testdata/src/<import path>/*.go) and mark the
// diagnostics they expect with trailing comments of the form
//
//	call() // want "regexp"
//	call() // want "first" "second"
//
// Run loads each named fixture package, applies the analyzer, and
// fails the test on any diagnostic without a matching want (and any
// want without a matching diagnostic), so a fixture both proves the
// analyzer fires and pins where it must stay silent.
package antest

import (
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the absolute path of the caller package's testdata
// directory. Analyzer test files live one level below the shared
// internal/analysis/testdata tree, so this resolves "../testdata"
// relative to the calling test file.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("antest: cannot locate caller")
	}
	dir, err := filepath.Abs(filepath.Join(filepath.Dir(file), "..", "testdata"))
	if err != nil {
		panic(err)
	}
	return dir
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run checks the analyzer against the fixture packages under
// testdata/src and reports mismatches on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	for _, path := range pkgPaths {
		runPkg(t, src, a, path)
	}
}

func runPkg(t *testing.T, src string, a *analysis.Analyzer, path string) {
	t.Helper()
	// Fixtures are rooted at the repo so stubs under
	// testdata/src/repro/... shadow nothing outside the tree.
	loader := analysis.NewLoader("", src)
	pkg, err := loader.Load(path)
	if err != nil {
		t.Errorf("%s: %v", path, err)
		return
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a}, loader)
	if err != nil {
		t.Errorf("%s: %v", path, err)
		return
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", path, d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", path, filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// collectWants extracts // want comments from every fixture file.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range splitQuoted(text) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go string literals ("a" `b` ...),
// either interpreted or raw.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if len(s) == 0 || (s[0] != '"' && s[0] != '`') {
			return out
		}
		quote := s[0]
		end := 1
		for end < len(s) {
			if quote == '"' && s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == quote {
				break
			}
			end++
		}
		if end >= len(s) {
			return out
		}
		unq, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return out
		}
		out = append(out, unq)
		s = s[end+1:]
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// regexp matches, and reports whether one was found.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// MustFire is a convenience for the "negative fixture actually fails"
// acceptance check: it runs the analyzer on a fixture package with the
// want-comments ignored and asserts at least one diagnostic fired.
func MustFire(t *testing.T, testdata string, a *analysis.Analyzer, path string) {
	t.Helper()
	loader := analysis.NewLoader("", filepath.Join(testdata, "src"))
	pkg, err := loader.Load(path)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a}, loader)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if len(diags) == 0 {
		t.Errorf("%s: analyzer %s reported nothing on its negative fixture", path, a.Name)
	}
}
