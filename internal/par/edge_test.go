package par

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestChunkedCtxMinChunkLargerThanN: when minChunk exceeds n the whole
// range must collapse to exactly one inline fn(0, n) call — no
// fragmentation, no goroutine.
func TestChunkedCtxMinChunkLargerThanN(t *testing.T) {
	restore := ForceWidthForTest(8)
	defer restore()

	var mu sync.Mutex
	var calls [][2]int
	err := ForEachChunkedCtx(context.Background(), 5, 100, func(lo, hi int) {
		mu.Lock()
		calls = append(calls, [2]int{lo, hi})
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if len(calls) != 1 || calls[0] != [2]int{0, 5} {
		t.Fatalf("calls = %v, want exactly [0,5)", calls)
	}
}

// TestChunkedCtxZeroItems: n == 0 must make no calls and report only the
// context's own state.
func TestChunkedCtxZeroItems(t *testing.T) {
	calls := 0
	if err := ForEachChunkedCtx(context.Background(), 0, 4, func(lo, hi int) { calls++ }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if calls != 0 {
		t.Fatalf("fn called %d times for n=0", calls)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForEachChunkedCtx(ctx, 0, 4, func(lo, hi int) { calls++ }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled n=0: err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("fn called %d times on pre-cancelled n=0", calls)
	}
}

// TestChunkedCtxPreCancelled: a context already done before the call
// must suppress even the single-chunk inline path.
func TestChunkedCtxPreCancelled(t *testing.T) {
	restore := ForceWidthForTest(4)
	defer restore()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := ForEachChunkedCtx(ctx, 16, 1, func(lo, hi int) { calls++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("fn called %d times under a pre-cancelled context", calls)
	}
}

// TestChunkedCtxCancelBetweenChunks drives the between-chunk
// cancellation cut deterministically: with the width pinned to 2 and the
// single extra-worker slot held by a blocked ForEach, every chunk of the
// tested call runs inline on the calling goroutine in order. The first
// chunk cancels the context, so the second chunk must be skipped and the
// error reported.
func TestChunkedCtxCancelBetweenChunks(t *testing.T) {
	restore := ForceWidthForTest(2)
	defer restore()

	// Occupy the one extra slot: a 2-item ForEach whose items both block
	// until the test finishes. One item lands on the helper goroutine
	// (the slot), one runs inline in this throwaway goroutine; held is
	// closed once both are running, i.e. the slot is definitely taken.
	hold := make(chan struct{})
	held := make(chan struct{})
	var running sync.WaitGroup
	running.Add(2)
	go ForEach(2, func(i int) {
		running.Done()
		if i == 1 {
			running.Wait()
			close(held)
		}
		<-hold
	})
	<-held
	defer close(hold)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var calls [][2]int
	err := ForEachChunkedCtx(ctx, 4, 1, func(lo, hi int) {
		mu.Lock()
		calls = append(calls, [2]int{lo, hi})
		mu.Unlock()
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Width 2 → NumChunks(4, 1) = 2 chunks of [0,2) and [2,4); the
	// inline first chunk cancels, so only it may have run.
	if len(calls) != 1 || calls[0] != [2]int{0, 2} {
		t.Fatalf("calls = %v, want exactly [0,2)", calls)
	}
}

// TestChunkedCtxCompleteRunCoversRange: sanity companion to the edge
// cases — an uncancelled run over an awkward n must cover [0, n) exactly
// once with chunks of at least minChunk items.
func TestChunkedCtxCompleteRunCoversRange(t *testing.T) {
	restore := ForceWidthForTest(3)
	defer restore()

	const n, minChunk = 11, 2
	var mu sync.Mutex
	seen := make([]int, n)
	err := ForEachChunkedCtx(context.Background(), n, minChunk, func(lo, hi int) {
		if hi-lo < minChunk {
			t.Errorf("chunk [%d,%d) below minChunk %d", lo, hi, minChunk)
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			seen[i]++
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("item %d covered %d times", i, c)
		}
	}
}
