// Package par provides the bounded fork-join helpers the compilation flow
// uses to exploit host parallelism: sibling subproblems of one hierarchy
// level, the candidate evaluations of one SEE step and the feedback
// variants are independent, so they fan out across cores — with a global
// worker budget so that nested fan-outs (subproblems running beam
// searches running candidate scoring) never oversubscribe the machine.
// When no budget is available the work runs inline on the caller's
// goroutine, which also makes the helpers deadlock-free under arbitrary
// nesting.
//
// The budget tracks runtime.GOMAXPROCS at acquire time rather than a
// boot-time core count: a caller that lowers GOMAXPROCS to 1 (the
// perfbench serial ablation, a cgroup-limited container) gets a fully
// inline, goroutine-free execution, and raising it mid-process widens the
// very next fan-out. The budget is additionally capped at runtime.NumCPU:
// Ps beyond the physical core count cannot add throughput, only
// scheduling overhead and cache traffic, so GOMAXPROCS=4 on a one-core
// container still runs fully inline (tests that need real worker
// goroutines regardless of the host pin the width with ForceWidthForTest).
//
// Callers keep determinism by writing only to their own index (or chunk)
// of a pre-sized result slice.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// extra counts the helper goroutines currently running across every
// concurrent fan-out in the process. The caller's own goroutine is free,
// so the budget is width()-1 extras.
var extra atomic.Int32

// forcedWidth, when positive, overrides the computed worker width. Set
// only through ForceWidthForTest.
var forcedWidth atomic.Int32

// width returns the process-wide worker budget including the caller's
// goroutine: min(GOMAXPROCS, NumCPU) read at call time, at least 1, or
// the test-forced value.
func width() int {
	if w := int(forcedWidth.Load()); w > 0 {
		return w
	}
	w := runtime.GOMAXPROCS(0)
	if ncpu := runtime.NumCPU(); w > ncpu {
		w = ncpu
	}
	if w < 1 {
		w = 1
	}
	return w
}

// tryAcquire claims one extra-worker slot if the process-wide budget
// (width()-1, read at call time) has room.
func tryAcquire() bool {
	for {
		limit := int32(width() - 1)
		cur := extra.Load()
		if cur >= limit {
			return false
		}
		if extra.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func release() { extra.Add(-1) }

// Width returns the maximum useful fan-out of one ForEach call: the
// extra-worker budget plus the caller's own goroutine, i.e. the current
// min(GOMAXPROCS, NumCPU) (at least 1). Callers use it to split work
// into enough items to fill the machine without over-fragmenting (e.g.
// the SEE's candidate-grid chunking).
func Width() int { return width() }

// ForceWidthForTest pins the worker width to n regardless of GOMAXPROCS
// and the core count, and returns a restore func. It exists for
// concurrency stress tests that must drive real worker goroutines (and
// the chunk shapes of a wide machine) on hosts with fewer cores than
// the scenario under test; production code never calls it.
func ForceWidthForTest(n int) (restore func()) {
	forcedWidth.Store(int32(n))
	return func() { forcedWidth.Store(0) }
}

// ForEach runs fn(0..n-1), each call exactly once, using spare cores when
// available and the calling goroutine otherwise. It returns when every
// call has finished. fn must confine its writes to per-index data.
func ForEach(n int, fn func(int)) {
	if n <= 1 {
		if n == 1 {
			fn(0)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if tryAcquire() {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer release()
				fn(i)
			}(i)
		} else {
			fn(i)
		}
	}
	wg.Wait()
}

// ForEachCtx is ForEach with a cancellation cut: once ctx is done, items
// not yet scheduled are skipped entirely; items already started always
// finish. It returns ctx.Err() if any item was skipped (or the context
// was done on return), nil when everything ran. Cancellation latency is
// therefore one item, not the remaining width of the fan-out. Like
// ForEach it never fails the items themselves — fn observes ctx through
// its closure if it wants to stop early too.
func ForEachCtx(ctx context.Context, n int, fn func(int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			wg.Wait()
			return err
		}
		if tryAcquire() {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer release()
				fn(i)
			}(i)
		} else {
			fn(i)
		}
	}
	wg.Wait()
	return ctx.Err()
}

// NumChunks returns how many chunks ForEachChunkedCtx splits n items
// into under the given minimum chunk size: enough to fill Width()
// workers, but never more chunks than n/minChunk so no chunk goes below
// minChunk items (the anti-fragmentation guarantee for tiny n). It is a
// pure function of (n, minChunk, Width()), so callers that need
// per-chunk bookkeeping — the SEE's scratch-seeding accounting — can
// reproduce the exact partition with ChunkBounds.
func NumChunks(n, minChunk int) int {
	if n <= 0 {
		return 0
	}
	if minChunk < 1 {
		minChunk = 1
	}
	c := n / minChunk
	if c < 1 {
		c = 1
	}
	if w := Width(); c > w {
		c = w
	}
	return c
}

// ChunkBounds returns the half-open item range [lo, hi) of chunk i when
// n items are split into chunks pieces: contiguous, in order, and
// balanced to within one item.
func ChunkBounds(n, chunks, i int) (lo, hi int) {
	return i * n / chunks, (i + 1) * n / chunks
}

// ForEachChunkedCtx runs fn over a partition of [0, n) into
// NumChunks(n, minChunk) contiguous ranges, one call per chunk, using
// spare cores when available and the calling goroutine otherwise. Unlike
// ForEachCtx it never pays a goroutine (or even a closure dispatch) per
// item: tiny fan-outs collapse to a single inline fn(0, n) call, and on
// a GOMAXPROCS=1 process every chunk runs inline on the caller.
//
// Cancellation matches ForEachCtx: chunks not yet scheduled when ctx is
// done are skipped and the non-nil ctx.Err() tells the caller the result
// slice is incomplete; chunks already started always finish. fn must
// confine its writes to data owned by its item range.
func ForEachChunkedCtx(ctx context.Context, n, minChunk int, fn func(lo, hi int)) error {
	chunks := NumChunks(n, minChunk)
	if chunks <= 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if chunks == 1 {
			fn(0, n)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for i := 0; i < chunks; i++ {
		if err := ctx.Err(); err != nil {
			wg.Wait()
			return err
		}
		lo, hi := ChunkBounds(n, chunks, i)
		if tryAcquire() {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer release()
				fn(lo, hi)
			}(lo, hi)
		} else {
			fn(lo, hi)
		}
	}
	wg.Wait()
	return ctx.Err()
}
