// Package par provides the bounded fork-join helper the compilation flow
// uses to exploit host parallelism: sibling subproblems of one hierarchy
// level and the candidate evaluations of one SEE step are independent, so
// they fan out across cores — with a global token pool so that nested
// fan-outs (subproblems running beam searches running candidate scoring)
// never oversubscribe the machine. When no token is available the work
// runs inline on the caller's goroutine, which also makes the helper
// deadlock-free under arbitrary nesting.
//
// Callers keep determinism by writing only to their own index of a
// pre-sized result slice.
package par

import (
	"context"
	"runtime"
	"sync"
)

var tokens = make(chan struct{}, maxInt(1, runtime.NumCPU()-1))

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Width returns the maximum useful fan-out of one ForEach call: the
// global token-pool size plus the caller's own goroutine. Callers use it
// to split work into enough items to fill the machine without
// over-fragmenting (e.g. the SEE's (state × cluster-chunk) fan-out).
func Width() int { return cap(tokens) + 1 }

// ForEach runs fn(0..n-1), each call exactly once, using spare cores when
// available and the calling goroutine otherwise. It returns when every
// call has finished. fn must confine its writes to per-index data.
func ForEach(n int, fn func(int)) {
	if n <= 1 {
		if n == 1 {
			fn(0)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case tokens <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-tokens }()
				fn(i)
			}(i)
		default:
			fn(i)
		}
	}
	wg.Wait()
}

// ForEachCtx is ForEach with a cancellation cut: once ctx is done, items
// not yet scheduled are skipped entirely; items already started always
// finish. It returns ctx.Err() if any item was skipped (or the context
// was done on return), nil when everything ran. Cancellation latency is
// therefore one item, not the remaining width of the fan-out. Like
// ForEach it never fails the items themselves — fn observes ctx through
// its closure if it wants to stop early too.
func ForEachCtx(ctx context.Context, n int, fn func(int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			wg.Wait()
			return err
		}
		select {
		case tokens <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-tokens }()
				fn(i)
			}(i)
		default:
			fn(i)
		}
	}
	wg.Wait()
	return ctx.Err()
}
