package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestForEachSmall(t *testing.T) {
	ran := false
	ForEach(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("n=1 did not run")
	}
	ForEach(0, func(i int) { t.Fatal("n=0 ran") })
}

func TestForEachNestedNoDeadlock(t *testing.T) {
	var total int64
	ForEach(8, func(i int) {
		ForEach(8, func(j int) {
			ForEach(4, func(k int) {
				atomic.AddInt64(&total, 1)
			})
		})
	})
	if total != 8*8*4 {
		t.Fatalf("total = %d", total)
	}
}

func TestForEachCtxRunsAllWhenLive(t *testing.T) {
	const n = 500
	var hits [n]int32
	if err := ForEachCtx(context.Background(), n, func(i int) { atomic.AddInt32(&hits[i], 1) }); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachCtx(ctx, 8, func(i int) { t.Errorf("item %d ran under cancelled ctx", i) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := ForEachCtx(ctx, 0, func(int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("n=0 err = %v, want context.Canceled", err)
	}
}

// TestForEachCtxCancelMidFanout pins the cancellation cut: items started
// before cancel finish, items not yet scheduled never run. The gate
// blocks every started item (token goroutines plus the caller's inline
// slot), so exactly Width() items are in flight when cancel hits.
func TestForEachCtxCancelMidFanout(t *testing.T) {
	n := Width() * 4
	gate := make(chan struct{})
	var started int32
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- ForEachCtx(ctx, n, func(i int) {
			atomic.AddInt32(&started, 1)
			<-gate
		})
	}()
	// Wait until the fan-out is saturated: Width()-1 token goroutines
	// blocked plus the caller blocked inline on item Width()-1.
	for atomic.LoadInt32(&started) != int32(Width()) {
		runtime.Gosched()
	}
	cancel()
	close(gate)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&started); got != int32(Width()) {
		t.Fatalf("%d items ran, want exactly Width()=%d", got, Width())
	}
}

func TestForEachCtxNestedNoDeadlock(t *testing.T) {
	ctx := context.Background()
	var total int64
	err := ForEachCtx(ctx, 8, func(i int) {
		if err := ForEachCtx(ctx, 8, func(j int) {
			ForEach(4, func(k int) { atomic.AddInt64(&total, 1) })
		}); err != nil {
			t.Errorf("inner: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("outer: %v", err)
	}
	if total != 8*8*4 {
		t.Fatalf("total = %d", total)
	}
}

// TestChunkBoundsPartition pins that NumChunks/ChunkBounds produce a
// gapless, overlap-free, ordered partition of [0, n) for every (n,
// minChunk) shape the engine uses, and that the minimum-chunk-size
// guarantee holds: no chunk is smaller than minChunk (so tiny fan-outs
// never pay a dispatch per item).
func TestChunkBoundsPartition(t *testing.T) {
	for n := 0; n <= 97; n++ {
		for _, minChunk := range []int{0, 1, 2, 3, 7, 16, 100} {
			chunks := NumChunks(n, minChunk)
			if n == 0 {
				if chunks != 0 {
					t.Fatalf("NumChunks(0, %d) = %d", minChunk, chunks)
				}
				continue
			}
			if chunks < 1 || chunks > Width() {
				t.Fatalf("NumChunks(%d, %d) = %d outside [1, Width()=%d]", n, minChunk, chunks, Width())
			}
			eff := minChunk
			if eff < 1 {
				eff = 1
			}
			next := 0
			for i := 0; i < chunks; i++ {
				lo, hi := ChunkBounds(n, chunks, i)
				if lo != next || hi <= lo {
					t.Fatalf("n=%d chunks=%d: chunk %d = [%d,%d), want lo=%d and hi>lo", n, chunks, i, lo, hi, next)
				}
				if chunks > 1 && hi-lo < eff {
					t.Fatalf("n=%d minChunk=%d: chunk %d has %d items < minChunk", n, minChunk, i, hi-lo)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d chunks=%d: partition ends at %d", n, chunks, next)
			}
		}
	}
}

func TestForEachChunkedCtxRunsAll(t *testing.T) {
	for _, n := range []int{1, 2, 7, 63, 64, 1000} {
		for _, minChunk := range []int{1, 4, 17} {
			hits := make([]int32, n)
			err := ForEachChunkedCtx(context.Background(), n, minChunk, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			if err != nil {
				t.Fatalf("n=%d minChunk=%d: %v", n, minChunk, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d minChunk=%d: item %d ran %d times", n, minChunk, i, h)
				}
			}
		}
	}
	if err := ForEachChunkedCtx(context.Background(), 0, 1, func(lo, hi int) {
		t.Fatal("n=0 ran a chunk")
	}); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}

func TestForEachChunkedCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachChunkedCtx(ctx, 64, 1, func(lo, hi int) {
		t.Errorf("chunk [%d,%d) ran under cancelled ctx", lo, hi)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The single-chunk fast path must observe cancellation too.
	if err := ForEachChunkedCtx(ctx, 1, 1, func(lo, hi int) {
		t.Error("single chunk ran under cancelled ctx")
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("single-chunk err = %v, want context.Canceled", err)
	}
}

// TestForEachChunkedCtxNested pins deadlock-freedom under nesting: the
// worker budget is try-acquire, so an inner chunked fan-out running on a
// borrowed worker falls back to inline execution instead of blocking.
func TestForEachChunkedCtxNested(t *testing.T) {
	ctx := context.Background()
	var total int64
	err := ForEachChunkedCtx(ctx, 16, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := ForEachChunkedCtx(ctx, 16, 2, func(jlo, jhi int) {
				atomic.AddInt64(&total, int64(jhi-jlo))
			}); err != nil {
				t.Errorf("inner: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatalf("outer: %v", err)
	}
	if total != 16*16 {
		t.Fatalf("total = %d, want %d", total, 16*16)
	}
}

func TestForEachPerIndexWritesUnsynced(t *testing.T) {
	// The documented pattern: per-index slots need no synchronization.
	out := make([]int, 64)
	ForEach(64, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
