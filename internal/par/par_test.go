package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestForEachSmall(t *testing.T) {
	ran := false
	ForEach(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("n=1 did not run")
	}
	ForEach(0, func(i int) { t.Fatal("n=0 ran") })
}

func TestForEachNestedNoDeadlock(t *testing.T) {
	var total int64
	ForEach(8, func(i int) {
		ForEach(8, func(j int) {
			ForEach(4, func(k int) {
				atomic.AddInt64(&total, 1)
			})
		})
	})
	if total != 8*8*4 {
		t.Fatalf("total = %d", total)
	}
}

func TestForEachCtxRunsAllWhenLive(t *testing.T) {
	const n = 500
	var hits [n]int32
	if err := ForEachCtx(context.Background(), n, func(i int) { atomic.AddInt32(&hits[i], 1) }); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachCtx(ctx, 8, func(i int) { t.Errorf("item %d ran under cancelled ctx", i) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := ForEachCtx(ctx, 0, func(int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("n=0 err = %v, want context.Canceled", err)
	}
}

// TestForEachCtxCancelMidFanout pins the cancellation cut: items started
// before cancel finish, items not yet scheduled never run. The gate
// blocks every started item (token goroutines plus the caller's inline
// slot), so exactly Width() items are in flight when cancel hits.
func TestForEachCtxCancelMidFanout(t *testing.T) {
	n := Width() * 4
	gate := make(chan struct{})
	var started int32
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- ForEachCtx(ctx, n, func(i int) {
			atomic.AddInt32(&started, 1)
			<-gate
		})
	}()
	// Wait until the fan-out is saturated: Width()-1 token goroutines
	// blocked plus the caller blocked inline on item Width()-1.
	for atomic.LoadInt32(&started) != int32(Width()) {
		runtime.Gosched()
	}
	cancel()
	close(gate)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&started); got != int32(Width()) {
		t.Fatalf("%d items ran, want exactly Width()=%d", got, Width())
	}
}

func TestForEachCtxNestedNoDeadlock(t *testing.T) {
	ctx := context.Background()
	var total int64
	err := ForEachCtx(ctx, 8, func(i int) {
		if err := ForEachCtx(ctx, 8, func(j int) {
			ForEach(4, func(k int) { atomic.AddInt64(&total, 1) })
		}); err != nil {
			t.Errorf("inner: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("outer: %v", err)
	}
	if total != 8*8*4 {
		t.Fatalf("total = %d", total)
	}
}

func TestForEachPerIndexWritesUnsynced(t *testing.T) {
	// The documented pattern: per-index slots need no synchronization.
	out := make([]int, 64)
	ForEach(64, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
