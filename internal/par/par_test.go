package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestForEachSmall(t *testing.T) {
	ran := false
	ForEach(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("n=1 did not run")
	}
	ForEach(0, func(i int) { t.Fatal("n=0 ran") })
}

func TestForEachNestedNoDeadlock(t *testing.T) {
	var total int64
	ForEach(8, func(i int) {
		ForEach(8, func(j int) {
			ForEach(4, func(k int) {
				atomic.AddInt64(&total, 1)
			})
		})
	})
	if total != 8*8*4 {
		t.Fatalf("total = %d", total)
	}
}

func TestForEachPerIndexWritesUnsynced(t *testing.T) {
	// The documented pattern: per-index slots need no synchronization.
	out := make([]int, 64)
	ForEach(64, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
