// Package report defines the machine-readable compile result shared by
// every front end: cmd/hca renders it as the classic text report (or as
// JSON under -json), and the compilation daemon (internal/service,
// cmd/hcad) returns it verbatim from POST /v1/compile. Because both
// paths build the same struct from the same core.Result, CLI and daemon
// outputs for identical inputs are verifiably identical.
package report

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/modsched"
	"repro/internal/trace"
)

// SchemaVersion identifies the Report JSON layout. Bump it whenever a
// field is renamed, removed, or changes meaning so daemon clients can
// detect incompatible servers; purely additive fields do not require a
// bump. Version 2 added schema_version itself, the winning variant name,
// and the optional trace summary. Version 3 added the engine registry
// fields: the configured engine, the per-subproblem engine-win counts,
// and the optimality gap when the exact engine proved a bound for every
// subproblem.
const SchemaVersion = 3

// Level summarizes one solved subproblem of the hierarchy.
type Level struct {
	ID           string `json:"id"` // paper-style label, e.g. "0,2,1"
	Level        int    `json:"level"`
	MII          int    `json:"mii"`
	WireLoad     int    `json:"wire_load"`
	Instructions int    `json:"instructions"`
}

// Schedule reports the achieved modulo schedule when scheduling ran.
type Schedule struct {
	II             int `json:"ii"`
	Stages         int `json:"stages"`
	Tries          int `json:"tries"`
	MaxRegPressure int `json:"max_reg_pressure"`
}

// Report is the complete machine-readable result of one compile.
type Report struct {
	// SchemaVersion stamps the JSON layout (see the SchemaVersion
	// constant); clients reject reports newer than they understand.
	SchemaVersion int `json:"schema_version"`

	Kernel       string `json:"kernel"`
	Fingerprint  string `json:"fingerprint"` // ddg.Fingerprint of the input DDG
	Instructions int    `json:"instructions"`
	MemOps       int    `json:"mem_ops"`
	Dependences  int    `json:"dependences"`

	Machine string `json:"machine"`
	CNs     int    `json:"cns"`

	Legal        bool `json:"legal"`
	MIIRec       int  `json:"mii_rec"`
	MIIRes       int  `json:"mii_res"`
	FinalMII     int  `json:"final_mii"`      // paper's §4.2 level-0 definition
	AllLevelsMII int  `json:"all_levels_mii"` // every level's cluster+wire pressure
	Receives     int  `json:"receives"`

	Subproblems    int `json:"subproblems"`
	StatesExplored int `json:"states_explored"`
	RouterEscapes  int `json:"router_escapes"`

	// Variant names the heuristic mix the feedback loop selected; empty
	// when the single default pipeline ran.
	Variant string `json:"variant,omitempty"`

	// Engine is the configured subproblem engine ("see", "exact",
	// "portfolio"); EngineWins counts, per engine, how many subproblems
	// its attempt won ("seed" marks min-cut partition seed wins).
	Engine     string         `json:"engine"`
	EngineWins map[string]int `json:"engine_wins,omitempty"`
	// ProvedSubproblems counts subproblems whose winning flow carries an
	// exact-engine optimality certificate; OptimalityGap is the relative
	// gap between the achieved objective and the proved lower bounds,
	// present only when every subproblem was proved (0 means the whole
	// clusterization is provably optimal under the objective).
	ProvedSubproblems int      `json:"proved_subproblems,omitempty"`
	OptimalityGap     *float64 `json:"optimality_gap,omitempty"`

	Levels []Level `json:"levels"`

	Schedule *Schedule `json:"schedule,omitempty"`

	// Trace is the aggregate telemetry of this compile — per-phase time
	// table plus the search counters — present when the caller recorded
	// the run (cmd/hca -trace / -trace-summary, or POST /v1/compile with
	// ?trace=1).
	Trace *trace.Summary `json:"trace,omitempty"`
}

// Build assembles the Report for a finished clusterization. sch, variant
// and rec are optional: pass the achieved schedule when modulo
// scheduling ran, the winning variant name when the feedback loop
// selected it, and the trace recorder when the compile was recorded (its
// Summary is folded into the report).
func Build(res *core.Result, sch *modsched.Schedule, variant string, rec *trace.Recorder) *Report {
	s := res.DDG.Stats()
	r := &Report{
		SchemaVersion:  SchemaVersion,
		Kernel:         res.DDG.Name,
		Fingerprint:    res.DDG.Fingerprint(),
		Instructions:   s.Instr,
		MemOps:         s.MemOps,
		Dependences:    s.Edges,
		Machine:        res.Machine.String(),
		CNs:            res.Machine.TotalCNs(),
		Legal:          res.Legal,
		MIIRec:         res.MII.Rec,
		MIIRes:         res.MII.Res,
		FinalMII:       res.MII.Final,
		AllLevelsMII:   res.MII.AllLevels,
		Receives:       res.Recvs,
		Subproblems:    len(res.Levels),
		StatesExplored: res.Stats.StatesExplored,
		RouterEscapes:  res.Stats.RouterInvocations,
		Variant:        variant,
		Engine:         res.Engine,
	}
	if r.Engine == "" {
		r.Engine = "see"
	}
	if len(res.EngineWins) > 0 {
		r.EngineWins = make(map[string]int, len(res.EngineWins))
		for k, v := range res.EngineWins {
			r.EngineWins[k] = v
		}
	}
	r.ProvedSubproblems = res.Optimality.Proved
	if gap, ok := res.Optimality.Gap(); ok {
		r.OptimalityGap = &gap
	}
	for _, ls := range res.Levels {
		r.Levels = append(r.Levels, Level{
			ID:           ls.ID(),
			Level:        ls.Level,
			MII:          ls.Flow.EstimateMII(),
			WireLoad:     ls.Mapping.MaxWireLoad,
			Instructions: ls.Flow.NumAssigned(),
		})
	}
	if sch != nil {
		r.Schedule = &Schedule{
			II:             sch.II,
			Stages:         sch.Stages,
			Tries:          sch.Tries,
			MaxRegPressure: modsched.MaxRegPressure(res.Final, sch, res.Machine.TotalCNs()),
		}
	}
	if rec != nil {
		r.Trace = rec.Summary()
	}
	return r
}

// JSON returns the canonical JSON encoding of the report — the exact
// bytes the daemon caches and serves, and what cmd/hca -json prints.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// OneLine renders the report as a single compact summary line — what
// cmd/hcactl's batch -summary mode prints per entry, and a convenient
// grep target in fleet logs.
func (r *Report) OneLine() string {
	line := fmt.Sprintf("%s %s legal=%v mii=%d receives=%d", r.Kernel, r.Machine, r.Legal, r.FinalMII, r.Receives)
	if r.Schedule != nil {
		line += fmt.Sprintf(" ii=%d stages=%d", r.Schedule.II, r.Schedule.Stages)
	}
	if r.Variant != "" {
		line += " variant=" + r.Variant
	}
	if r.Engine != "" && r.Engine != "see" {
		line += " engine=" + r.Engine
	}
	if r.OptimalityGap != nil {
		line += fmt.Sprintf(" gap=%.2f%%", *r.OptimalityGap*100)
	}
	return line
}

// WriteText renders the classic human-readable report. With verbose set
// the per-level solutions are listed too.
func (r *Report) WriteText(w io.Writer, verbose bool) error {
	variant := ""
	if r.Variant != "" {
		variant = fmt.Sprintf("variant     %s (selected by scheduling feedback)\n", r.Variant)
	}
	engine := ""
	if r.Engine != "" && r.Engine != "see" {
		engine = fmt.Sprintf("engine      %s", r.Engine)
		if len(r.EngineWins) > 0 {
			engine += " (wins:"
			for _, name := range []string{"see", "exact", "seed"} {
				if n := r.EngineWins[name]; n > 0 {
					engine += fmt.Sprintf(" %s=%d", name, n)
				}
			}
			engine += ")"
		}
		if r.OptimalityGap != nil {
			engine += fmt.Sprintf(", optimality gap %.2f%%", *r.OptimalityGap*100)
		}
		engine += "\n"
	}
	_, err := fmt.Fprintf(w,
		"kernel      %s (%d instructions, %d memory ops, %d dependences)\n"+
			"fingerprint %s\n"+
			"machine     %s\n"+
			"%s%s"+
			"legal       %v (coherency checker passed)\n"+
			"MIIRec      %d\n"+
			"MIIRes      %d (unified %d-issue bound)\n"+
			"Final MII   %d (paper's §4.2 level-0 definition)\n"+
			"AllLevels   %d (every level's cluster+wire pressure)\n"+
			"receives    %d inserted\n"+
			"subproblems %d solved, %d states explored, %d router escapes\n",
		r.Kernel, r.Instructions, r.MemOps, r.Dependences,
		r.Fingerprint,
		r.Machine,
		variant, engine,
		r.Legal,
		r.MIIRec,
		r.MIIRes, r.CNs,
		r.FinalMII,
		r.AllLevelsMII,
		r.Receives,
		r.Subproblems, r.StatesExplored, r.RouterEscapes)
	if err != nil {
		return err
	}
	if verbose {
		fmt.Fprintf(w, "\nper-level solutions:\n")
		for _, l := range r.Levels {
			if _, err := fmt.Fprintf(w, "  %-8s level %d: MII %2d, wire load %2d, %d instructions\n",
				l.ID, l.Level, l.MII, l.WireLoad, l.Instructions); err != nil {
				return err
			}
		}
	}
	if r.Schedule != nil {
		if _, err := fmt.Fprintf(w, "\nmodulo schedule: II=%d, %d stages, %d tries (MII bound was %d)\n"+
			"rotating registers: max %d per CN\n",
			r.Schedule.II, r.Schedule.Stages, r.Schedule.Tries, r.FinalMII,
			r.Schedule.MaxRegPressure); err != nil {
			return err
		}
	}
	return nil
}
