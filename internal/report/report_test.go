package report_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/report"
)

func TestBuildAndRoundTrip(t *testing.T) {
	k, err := kernels.ByName("fir2dim")
	if err != nil {
		t.Fatal(err)
	}
	d := k.Build()
	mc := machine.DSPFabric64(8, 8, 8)
	res, err := core.HCA(context.Background(), d, mc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sch, err := modsched.Run(context.Background(), res.Final, res.FinalCN, mc, modsched.Config{})
	if err != nil {
		t.Fatal(err)
	}

	r := report.Build(res, sch, "default", nil)
	if r.Kernel != "fir2dim" || !r.Legal || r.Instructions != 57 {
		t.Fatalf("bad header: %+v", r)
	}
	if r.Fingerprint != d.Fingerprint() {
		t.Error("fingerprint mismatch")
	}
	if r.Schedule == nil || r.Schedule.II < r.FinalMII {
		t.Fatalf("schedule II %v below MII %d", r.Schedule, r.FinalMII)
	}
	if len(r.Levels) != len(res.Levels) {
		t.Errorf("levels: got %d want %d", len(r.Levels), len(res.Levels))
	}

	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back report.Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("JSON round trip is not stable")
	}

	var sb strings.Builder
	if err := r.WriteText(&sb, true); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fir2dim", "fingerprint", "modulo schedule", "per-level solutions", "variant     default"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, sb.String())
		}
	}
}

// The same inputs must produce byte-identical JSON across runs: the
// service caches these bytes and serves them on hits, and cmd/hca -json
// must agree with the daemon for the same request.
func TestJSONDeterministic(t *testing.T) {
	mc := machine.DSPFabric64(8, 8, 8)
	build := func() []byte {
		k, _ := kernels.ByName("idcthor")
		res, err := core.HCA(context.Background(), k.Build(), mc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := report.Build(res, nil, "", nil).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(build(), build()) {
		t.Error("two identical compiles produced different JSON")
	}
}
