// Package partition provides a balanced min-cut graph partitioner in the
// multilevel style of Chu, Fan and Mahlke (PLDI'03, the paper's §6
// comparison point): heavy-edge coarsening, affinity-driven bin packing,
// and greedy move refinement. The HCA driver uses it to *seed* each
// subproblem with a communication-minimal partition that competes with
// the beam-search solution.
package partition

import (
	"sort"

	"repro/internal/ddg"
	"repro/internal/graph"
)

// Assign partitions the given working set of d into k groups of at most
// maxPerGroup nodes each, minimizing the number of dependence edges cut.
// The result maps each working-set node to its group (nodes outside ws
// are absent). Deterministic.
//
// Internally everything is indexed by dense NodeID: membership flags,
// the union-find forest, and the placement array, so the hot loops (the
// per-group affinity scan and the refinement sweeps) touch flat arrays
// instead of hashing; only the returned map allocates per node.
func Assign(d *ddg.DDG, ws []graph.NodeID, k, maxPerGroup int) map[graph.NodeID]int {
	if k < 1 {
		panic("partition: k must be positive")
	}
	n := d.Len()
	inWS := make([]bool, n)
	for _, x := range ws {
		inWS[x] = true
	}
	// Union-find with size caps.
	parent := make([]graph.NodeID, n)
	size := make([]int, n)
	for _, x := range ws {
		parent[x] = x
		size[x] = 1
	}
	find := func(x graph.NodeID) graph.NodeID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// Heavy-edge coarsening down to ~3k groups, capped at maxPerGroup.
	// Working-set edges are collapsed to undirected (a, b) pairs with
	// multiplicity by sorting packed keys once, replacing the weight map.
	keys := make([]int64, 0, d.G.NumEdges())
	d.G.Edges(func(e graph.Edge) {
		if !inWS[e.From] || !inWS[e.To] || e.From == e.To {
			return
		}
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		keys = append(keys, int64(a)<<32|int64(b))
	})
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	type wpair struct {
		a, b graph.NodeID
		w    int
	}
	var weight []wpair
	for i := 0; i < len(keys); {
		j := i
		for j < len(keys) && keys[j] == keys[i] {
			j++
		}
		weight = append(weight, wpair{graph.NodeID(keys[i] >> 32), graph.NodeID(keys[i] & 0xffffffff), j - i})
		i = j
	}
	groups := len(ws)
	target := 3 * k
	for groups > target {
		type cand struct {
			w    int
			a, b graph.NodeID
		}
		var cands []cand
		for _, p := range weight {
			a, b := find(p.a), find(p.b)
			if a != b && size[a]+size[b] <= maxPerGroup {
				cands = append(cands, cand{p.w, a, b})
			}
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].w != cands[j].w {
				return cands[i].w > cands[j].w
			}
			if cands[i].a != cands[j].a {
				return cands[i].a < cands[j].a
			}
			return cands[i].b < cands[j].b
		})
		merged := false
		for _, c := range cands {
			a, b := find(c.a), find(c.b)
			if a == b || size[a]+size[b] > maxPerGroup {
				continue
			}
			if b < a {
				a, b = b, a
			}
			parent[b] = a
			size[a] += size[b]
			groups--
			merged = true
			if groups <= target {
				break
			}
		}
		if !merged {
			break
		}
	}

	// Bin packing: place coarse groups (largest first) into the bin with
	// the strongest affinity (edges to already-placed nodes), respecting
	// capacity; least-loaded bin on ties.
	members := map[graph.NodeID][]graph.NodeID{}
	for _, x := range ws {
		r := find(x)
		members[r] = append(members[r], x)
	}
	roots := make([]graph.NodeID, 0, len(members))
	for r := range members {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		if len(members[roots[i]]) != len(members[roots[j]]) {
			return len(members[roots[i]]) > len(members[roots[j]])
		}
		return roots[i] < roots[j]
	})
	// place[x] is x's bin, or -1 while unplaced (non-ws nodes stay -1).
	place := make([]int, n)
	for i := range place {
		place[i] = -1
	}
	load := make([]int, k)
	affinity := make([]int, k)
	for _, r := range roots {
		ms := members[r]
		// Every edge between a placed node and an unplaced member of r is
		// incident to some member, so scanning the members' edge lists
		// visits each contributing edge exactly once (members themselves
		// are all unplaced until the group is committed below).
		for i := range affinity {
			affinity[i] = 0
		}
		for _, m := range ms {
			d.G.In(m, func(e graph.Edge) {
				if g := place[e.From]; g >= 0 {
					affinity[g]++
				}
			})
			d.G.Out(m, func(e graph.Edge) {
				if g := place[e.To]; g >= 0 {
					affinity[g]++
				}
			})
		}
		best := -1
		for b := 0; b < k; b++ {
			if load[b]+len(ms) > maxPerGroup {
				continue
			}
			if best < 0 || affinity[b] > affinity[best] ||
				(affinity[b] == affinity[best] && load[b] < load[best]) {
				best = b
			}
		}
		if best < 0 {
			// Capacity exhausted everywhere (over-full ws): spill to the
			// least-loaded bin.
			best = 0
			for b := 1; b < k; b++ {
				if load[b] < load[best] {
					best = b
				}
			}
		}
		for _, m := range ms {
			place[m] = best
		}
		load[best] += len(ms)
	}

	// Refinement: greedy single-node moves reducing cut under the cap.
	gain := make([]int, k)
	for sweep := 0; sweep < 4; sweep++ {
		improved := false
		for _, x := range ws {
			cur := place[x]
			for i := range gain {
				gain[i] = 0
			}
			d.G.Out(x, func(e graph.Edge) {
				if g := place[e.To]; g >= 0 {
					gain[g]++
				}
			})
			d.G.In(x, func(e graph.Edge) {
				if g := place[e.From]; g >= 0 {
					gain[g]++
				}
			})
			best, bestGain := cur, 0
			for b := 0; b < k; b++ {
				if b == cur || load[b]+1 > maxPerGroup {
					continue
				}
				if g := gain[b] - gain[cur]; g > bestGain {
					best, bestGain = b, g
				}
			}
			if best != cur {
				load[cur]--
				load[best]++
				place[x] = best
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	out := make(map[graph.NodeID]int, len(ws))
	for _, x := range ws {
		out[x] = place[x]
	}
	return out
}

// Cut returns the number of working-set dependence edges crossing groups
// under the given assignment.
func Cut(d *ddg.DDG, assign map[graph.NodeID]int) int {
	cut := 0
	d.G.Edges(func(e graph.Edge) {
		fa, fok := assign[e.From]
		ta, tok := assign[e.To]
		if fok && tok && fa != ta {
			cut++
		}
	})
	return cut
}
