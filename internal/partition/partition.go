// Package partition provides a balanced min-cut graph partitioner in the
// multilevel style of Chu, Fan and Mahlke (PLDI'03, the paper's §6
// comparison point): heavy-edge coarsening, affinity-driven bin packing,
// and greedy move refinement. The HCA driver uses it to *seed* each
// subproblem with a communication-minimal partition that competes with
// the beam-search solution.
package partition

import (
	"sort"

	"repro/internal/ddg"
	"repro/internal/graph"
)

// Assign partitions the given working set of d into k groups of at most
// maxPerGroup nodes each, minimizing the number of dependence edges cut.
// The result maps each working-set node to its group (nodes outside ws
// are absent). Deterministic.
func Assign(d *ddg.DDG, ws []graph.NodeID, k, maxPerGroup int) map[graph.NodeID]int {
	if k < 1 {
		panic("partition: k must be positive")
	}
	inWS := make(map[graph.NodeID]bool, len(ws))
	for _, n := range ws {
		inWS[n] = true
	}
	// Union-find with size caps.
	parent := map[graph.NodeID]graph.NodeID{}
	size := map[graph.NodeID]int{}
	for _, n := range ws {
		parent[n] = n
		size[n] = 1
	}
	var find func(graph.NodeID) graph.NodeID
	find = func(x graph.NodeID) graph.NodeID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// Heavy-edge coarsening down to ~3k groups, capped at maxPerGroup.
	type pair struct{ a, b graph.NodeID }
	weight := map[pair]int{}
	d.G.Edges(func(e graph.Edge) {
		if !inWS[e.From] || !inWS[e.To] || e.From == e.To {
			return
		}
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		weight[pair{a, b}]++
	})
	groups := len(ws)
	target := 3 * k
	for groups > target {
		type cand struct {
			w    int
			a, b graph.NodeID
		}
		var cands []cand
		for p, w := range weight {
			a, b := find(p.a), find(p.b)
			if a != b && size[a]+size[b] <= maxPerGroup {
				cands = append(cands, cand{w, a, b})
			}
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].w != cands[j].w {
				return cands[i].w > cands[j].w
			}
			if cands[i].a != cands[j].a {
				return cands[i].a < cands[j].a
			}
			return cands[i].b < cands[j].b
		})
		merged := false
		for _, c := range cands {
			a, b := find(c.a), find(c.b)
			if a == b || size[a]+size[b] > maxPerGroup {
				continue
			}
			if b < a {
				a, b = b, a
			}
			parent[b] = a
			size[a] += size[b]
			groups--
			merged = true
			if groups <= target {
				break
			}
		}
		if !merged {
			break
		}
	}

	// Bin packing: place coarse groups (largest first) into the bin with
	// the strongest affinity (edges to already-placed nodes), respecting
	// capacity; least-loaded bin on ties.
	members := map[graph.NodeID][]graph.NodeID{}
	for _, n := range ws {
		r := find(n)
		members[r] = append(members[r], n)
	}
	roots := make([]graph.NodeID, 0, len(members))
	for r := range members {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		if len(members[roots[i]]) != len(members[roots[j]]) {
			return len(members[roots[i]]) > len(members[roots[j]])
		}
		return roots[i] < roots[j]
	})
	out := make(map[graph.NodeID]int, len(ws))
	load := make([]int, k)
	for _, r := range roots {
		ms := members[r]
		affinity := make([]int, k)
		d.G.Edges(func(e graph.Edge) {
			if !inWS[e.From] || !inWS[e.To] {
				return
			}
			fi, fok := out[e.From]
			ti, tok := out[e.To]
			if fok && !tok && find(e.To) == r {
				affinity[fi]++
			}
			if tok && !fok && find(e.From) == r {
				affinity[ti]++
			}
		})
		best := -1
		for b := 0; b < k; b++ {
			if load[b]+len(ms) > maxPerGroup {
				continue
			}
			if best < 0 || affinity[b] > affinity[best] ||
				(affinity[b] == affinity[best] && load[b] < load[best]) {
				best = b
			}
		}
		if best < 0 {
			// Capacity exhausted everywhere (over-full ws): spill to the
			// least-loaded bin.
			best = 0
			for b := 1; b < k; b++ {
				if load[b] < load[best] {
					best = b
				}
			}
		}
		for _, n := range ms {
			out[n] = best
		}
		load[best] += len(ms)
	}

	// Refinement: greedy single-node moves reducing cut under the cap.
	for sweep := 0; sweep < 4; sweep++ {
		improved := false
		for _, n := range ws {
			cur := out[n]
			gain := make([]int, k)
			d.G.Out(n, func(e graph.Edge) {
				if g, ok := out[e.To]; ok {
					gain[g]++
				}
			})
			d.G.In(n, func(e graph.Edge) {
				if g, ok := out[e.From]; ok {
					gain[g]++
				}
			})
			best, bestGain := cur, 0
			for b := 0; b < k; b++ {
				if b == cur || load[b]+1 > maxPerGroup {
					continue
				}
				if g := gain[b] - gain[cur]; g > bestGain {
					best, bestGain = b, g
				}
			}
			if best != cur {
				load[cur]--
				load[best]++
				out[n] = best
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return out
}

// Cut returns the number of working-set dependence edges crossing groups
// under the given assignment.
func Cut(d *ddg.DDG, assign map[graph.NodeID]int) int {
	cut := 0
	d.G.Edges(func(e graph.Edge) {
		fa, fok := assign[e.From]
		ta, tok := assign[e.To]
		if fok && tok && fa != ta {
			cut++
		}
	})
	return cut
}
