package partition

import (
	"math/rand"
	"testing"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/kernels"
)

func wsAll(d *ddg.DDG) []graph.NodeID {
	ws := make([]graph.NodeID, d.Len())
	for i := range ws {
		ws[i] = graph.NodeID(i)
	}
	return ws
}

func TestAssignCoversAndBalances(t *testing.T) {
	d := kernels.H264Deblock()
	ws := wsAll(d)
	const k, cap = 4, 60
	parts := Assign(d, ws, k, cap)
	if len(parts) != len(ws) {
		t.Fatalf("covered %d of %d", len(parts), len(ws))
	}
	load := make([]int, k)
	for _, g := range parts {
		if g < 0 || g >= k {
			t.Fatalf("bad group %d", g)
		}
		load[g]++
	}
	for g, l := range load {
		if l > cap {
			t.Errorf("group %d holds %d > %d", g, l, cap)
		}
	}
}

func TestCutBeatsRandom(t *testing.T) {
	for _, k := range kernels.All() {
		d := k.Build()
		ws := wsAll(d)
		cap := (len(ws)+3)/4 + 4
		parts := Assign(d, ws, 4, cap)
		rng := rand.New(rand.NewSource(1))
		randParts := map[graph.NodeID]int{}
		for _, n := range ws {
			randParts[n] = rng.Intn(4)
		}
		if got, rnd := Cut(d, parts), Cut(d, randParts); got >= rnd {
			t.Errorf("%s: partition cut %d >= random %d", k.Name, got, rnd)
		}
	}
}

func TestThreeIndependentChainsSeparate(t *testing.T) {
	// Three disjoint chains into 3 groups: zero cut is achievable and the
	// partitioner must find it.
	d := ddg.New("chains")
	for c := 0; c < 3; c++ {
		prev := d.AddConst(int64(c), "c")
		for i := 0; i < 9; i++ {
			m := d.AddOp(ddg.OpMov, "m")
			d.AddDep(prev, m, 0, 0)
			prev = m
		}
	}
	parts := Assign(d, wsAll(d), 3, 12)
	if cut := Cut(d, parts); cut != 0 {
		t.Errorf("cut = %d, want 0", cut)
	}
}

func TestDeterministic(t *testing.T) {
	d := kernels.MPEG2Inter()
	a := Assign(d, wsAll(d), 4, 25)
	b := Assign(kernels.MPEG2Inter(), wsAll(d), 4, 25)
	for n, g := range a {
		if b[n] != g {
			t.Fatalf("nondeterministic at node %d", n)
		}
	}
}

func TestSubsetWorkingSet(t *testing.T) {
	d := kernels.Fir2Dim()
	ws := wsAll(d)[:20]
	parts := Assign(d, ws, 2, 12)
	if len(parts) != 20 {
		t.Fatalf("covered %d", len(parts))
	}
	for _, n := range ws[20:] {
		if _, ok := parts[n]; ok {
			t.Fatalf("node %d outside ws assigned", n)
		}
	}
}

func TestSpillWhenOverfull(t *testing.T) {
	// cap*k < len(ws): the packer must still place everything.
	d := kernels.IDCTHor()
	ws := wsAll(d)
	parts := Assign(d, ws, 4, 10) // 40 < 82
	if len(parts) != len(ws) {
		t.Fatalf("covered %d of %d", len(parts), len(ws))
	}
}

func TestPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Assign(ddg.New("x"), nil, 0, 1)
}
