package emit

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/regalloc"
)

func buildProgram(t *testing.T, name string) (*Program, *core.Result, *modsched.Schedule) {
	t.Helper()
	k, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	mc := machine.DSPFabric64(8, 8, 8)
	res, err := core.HCA(context.Background(), k.Build(), mc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := modsched.Run(context.Background(), res.Final, res.FinalCN, mc, modsched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(res, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p, res, s
}

func TestBuildCoversEveryInstruction(t *testing.T) {
	p, res, s := buildProgram(t, "fir2dim")
	st := p.ProgramStats()
	if st.Instructions != res.Final.Len() {
		t.Errorf("emitted %d instructions, final DDG has %d", st.Instructions, res.Final.Len())
	}
	if st.KernelSlots != s.II {
		t.Errorf("slots = %d, want II %d", st.KernelSlots, s.II)
	}
	if st.ConfigDirectives == 0 {
		t.Error("no reconfiguration directives emitted")
	}
	// Within a slot, CNs must be unique (single issue).
	for slot, instrs := range p.Slots {
		seen := map[int]bool{}
		for _, in := range instrs {
			if seen[in.CN] {
				t.Errorf("slot %d: CN %d issued twice", slot, in.CN)
			}
			seen[in.CN] = true
		}
	}
}

func TestWriteTextStructure(t *testing.T) {
	p, _, _ := buildProgram(t, "idcthor")
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"; kernel idcthor", ".reconfigure", ".kernel", "slot 0:", "load", "store", "wire",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q", want)
		}
	}
	// Receives must appear, with stage predicates.
	if !strings.Contains(out, "recv") {
		t.Error("no receive primitives in listing")
	}
	if !strings.Contains(out, "[p0]") {
		t.Error("no stage predicates in listing")
	}
}

func TestDisasmForms(t *testing.T) {
	p, _, _ := buildProgram(t, "fir2dim")
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Immediate form (addi), const form, loop-carried operand marker.
	for _, want := range []string{"#1", "const", "@-1"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestBuildRejectsMismatch(t *testing.T) {
	_, res, _ := buildProgram(t, "fir2dim")
	bad := &modsched.Schedule{II: 1, Time: []int{0}, CN: []int{0}}
	if _, err := Build(res, bad, nil); err == nil {
		t.Fatal("accepted mismatched schedule")
	}
}

func TestAllKernelsEmit(t *testing.T) {
	for _, k := range kernels.All() {
		p, res, _ := buildProgram(t, k.Name)
		if got := p.ProgramStats().Instructions; got != res.Final.Len() {
			t.Errorf("%s: %d emitted != %d", k.Name, got, res.Final.Len())
		}
	}
}

func TestEmitWithPhysicalRegisters(t *testing.T) {
	_, res, s := buildProgram(t, "fir2dim")
	mc := machine.DSPFabric64(8, 8, 8)
	alloc, err := regalloc.Run(res.Final, s, mc, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(res, s, alloc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "-> r") {
		t.Error("no physical register names in listing")
	}
	if strings.Contains(out, "-> v") {
		t.Error("virtual names leaked despite full allocation")
	}
}

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenListing locks the emitted program format: the toolchain's
// output artifact must not drift silently. Regenerate with
// go test ./internal/emit -run Golden -update.
func TestGoldenListing(t *testing.T) {
	p, res, s := buildProgram(t, "fir2dim")
	mc := machine.DSPFabric64(8, 8, 8)
	alloc, err := regalloc.Run(res.Final, s, mc, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, err = Build(res, s, alloc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fir2dim.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("listing drifted from golden file (rerun with -update if intended)\ngot %d bytes, want %d", buf.Len(), len(want))
	}
}
