// Package emit generates the loadable program image the compilation flow
// ultimately exists to produce (§2.2): the *reconfiguration preamble* —
// the wire selections that instantiate the chosen topology, executed in
// the reconfiguration phase that precedes the loop — and the *kernel-only
// loop body* — II instruction slots per computation node, fully
// predicated by pipeline stage, executed under the cyclic program counter.
//
// The output is a human-readable assembly-like listing; the structures
// are exported so other back ends (binary encoders, RTL testbenches) can
// consume them.
package emit

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/modsched"
	"repro/internal/pg"
	"repro/internal/regalloc"
)

// WireDirective is one reconfiguration action: select a physical wire at
// one level of the hierarchy.
type WireDirective struct {
	Problem string // subproblem id, e.g. "0" or "0,2"
	Level   int
	From    string // source cluster (or "in#k"/"out#k" for parent wires)
	Dests   []string
	Values  []int // DDG nodes whose values travel on the wire
	Glue    bool
}

// Instr is one slot of the kernel.
type Instr struct {
	Node  graph.NodeID
	CN    int
	Slot  int // kernel slot (cycle mod II)
	Stage int // pipeline stage (predicate index)
	Text  string
}

// Program is a complete loadable image.
type Program struct {
	Machine string
	Kernel  string
	II      int
	Stages  int
	Config  []WireDirective
	// Slots[slot] lists the instructions issued in that kernel cycle,
	// ordered by CN.
	Slots [][]Instr
}

// Build assembles the program image from an HCA result and its modulo
// schedule (which must cover res.Final). When alloc is non-nil, values
// are printed with their physical rotating-register blocks instead of
// virtual names.
func Build(res *core.Result, s *modsched.Schedule, alloc *regalloc.Result) (*Program, error) {
	if len(s.Time) != res.Final.Len() {
		return nil, fmt.Errorf("emit: schedule covers %d nodes, final DDG has %d", len(s.Time), res.Final.Len())
	}
	regOf := map[graph.NodeID]string{}
	if alloc != nil {
		for _, a := range alloc.Allocs {
			regOf[a.Value] = fmt.Sprintf("r%d", a.Reg)
		}
		for _, v := range alloc.Spilled {
			regOf[v] = "SPILL"
		}
	}
	p := &Program{
		Machine: res.Machine.Name,
		Kernel:  res.DDG.Name,
		II:      s.II,
		Stages:  s.Stages,
		Slots:   make([][]Instr, s.II),
	}
	for _, ls := range res.Levels {
		for _, w := range ls.Mapping.Wires {
			wd := WireDirective{Problem: ls.ID(), Level: ls.Level, Glue: w.Glue}
			wd.From = clusterName(ls, int(w.From))
			for _, d := range w.Dests {
				wd.Dests = append(wd.Dests, clusterName(ls, int(d)))
			}
			for _, v := range w.Values {
				wd.Values = append(wd.Values, int(v))
			}
			p.Config = append(p.Config, wd)
		}
	}
	d := res.Final
	for i := 0; i < d.Len(); i++ {
		n := graph.NodeID(i)
		slot := s.Time[i] % s.II
		p.Slots[slot] = append(p.Slots[slot], Instr{
			Node:  n,
			CN:    s.CN[i],
			Slot:  slot,
			Stage: s.Time[i] / s.II,
			Text:  disasm(d, n, regOf),
		})
	}
	for _, slot := range p.Slots {
		sort.Slice(slot, func(i, j int) bool { return slot[i].CN < slot[j].CN })
	}
	return p, nil
}

func clusterName(ls *core.LevelSolution, c int) string {
	switch ls.Flow.T.Cluster(pg.ClusterID(c)).Kind {
	case pg.InNode:
		return fmt.Sprintf("in#%d", c)
	case pg.OutNode:
		return fmt.Sprintf("out#%d", c)
	default:
		return fmt.Sprintf("c%d", c)
	}
}

// disasm renders one instruction in a three-address style: operands are
// the producing nodes' virtual registers (or physical rotating-register
// names when an allocation is supplied), immediates inline.
func disasm(d *ddg.DDG, n graph.NodeID, regOf map[graph.NodeID]string) string {
	name := func(v graph.NodeID) string {
		if r, ok := regOf[v]; ok {
			return r
		}
		return fmt.Sprintf("v%d", v)
	}
	node := d.Node(n)
	type op struct {
		port int
		text string
	}
	var ops []op
	d.G.In(n, func(e graph.Edge) {
		t := name(e.From)
		if e.Distance > 0 {
			t += fmt.Sprintf("@-%d", e.Distance)
		}
		ops = append(ops, op{d.Port(e.ID), t})
	})
	sort.Slice(ops, func(i, j int) bool { return ops[i].port < ops[j].port })
	parts := make([]string, 0, len(ops)+1)
	for _, o := range ops {
		parts = append(parts, o.text)
	}
	if node.HasImm2 {
		parts = append(parts, fmt.Sprintf("#%d", node.Imm2))
	}
	switch node.Op {
	case ddg.OpConst:
		parts = append(parts, fmt.Sprintf("#%d", node.Imm))
	case ddg.OpIV:
		parts = append(parts, fmt.Sprintf("#%d,step#%d", node.Imm, node.Step))
	}
	return fmt.Sprintf("%-6s %s -> %s", node.Op, strings.Join(parts, ", "), name(n))
}

// WriteText renders the program as an assembly-like listing.
func (p *Program) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "; kernel %s on %s\n", p.Kernel, p.Machine)
	fmt.Fprintf(w, "; II=%d stages=%d (kernel-only modulo schedule, cyclic PC)\n\n", p.II, p.Stages)
	fmt.Fprintf(w, ".reconfigure            ; executed once before the loop (§2.2)\n")
	for _, c := range p.Config {
		glue := ""
		if c.Glue {
			glue = " ; glue"
		}
		fmt.Fprintf(w, "  [%s L%d] wire %s -> %s carrying %v%s\n",
			c.Problem, c.Level, c.From, strings.Join(c.Dests, ","), c.Values, glue)
	}
	fmt.Fprintf(w, "\n.kernel\n")
	for slot, instrs := range p.Slots {
		fmt.Fprintf(w, "slot %d:\n", slot)
		for _, in := range instrs {
			fmt.Fprintf(w, "  cn%-3d [p%d] %s\n", in.CN, in.Stage, in.Text)
		}
	}
	return nil
}

// Stats summarizes the emitted program for reports.
type Stats struct {
	ConfigDirectives int
	KernelSlots      int
	Instructions     int
	MaxPerSlot       int
}

// Stats computes listing statistics.
func (p *Program) ProgramStats() Stats {
	st := Stats{ConfigDirectives: len(p.Config), KernelSlots: p.II}
	for _, slot := range p.Slots {
		st.Instructions += len(slot)
		if len(slot) > st.MaxPerSlot {
			st.MaxPerSlot = len(slot)
		}
	}
	return st
}
