package machine

// Fabric cost model. The design-space sweep (internal/dse) needs a
// scalar to trade against achieved MII when it draws a Pareto front
// over candidate fabrics; this file provides it. The model is a
// deliberately simple silicon-area proxy, counted in crosspoint
// equivalents (one MUX crosspoint = 1):
//
//   - Interconnect: every input wire of every group instance is a MUX
//     over the output wires it can listen to, so one level contributes
//     instances × InWires × reachableSources × OutWires crosspoints.
//     On ring/linear level-0 neighborhoods the reachable set comes from
//     Connected, so widening RingNeighbors grows the cost until the
//     neighborhood saturates into all-to-all — exactly the point where
//     the DSE dedup collapses the fabrics too.
//   - Computation nodes: a fixed per-CN cost plus a per-port cost for
//     its leaf-crossbar pins.
//   - Memory capability and DMA ports carry their own premiums.
//
// The weights are relative, not calibrated to any process node; what
// matters for the Pareto front is that the total is deterministic and
// strictly monotone in every capacity parameter.
const (
	costCN      = 96 // one single-issue computation node
	costCNPort  = 8  // per CN input/output port (leaf crossbar pins)
	costMemCN   = 48 // memory-capability premium per memory-capable CN
	costDMAPort = 32 // per simultaneously served DMA request
)

// Cost is the fabric-cost breakdown, in crosspoint equivalents.
type Cost struct {
	// Crosspoints counts interconnect MUX crosspoints over every level.
	Crosspoints int64 `json:"crosspoints"`
	// CNs is the computation-node cost including leaf-crossbar ports.
	CNs int64 `json:"cns"`
	// Mem is the memory-capability premium (heterogeneous machines pay
	// only for their memory-capable CNs).
	Mem int64 `json:"mem"`
	// DMA is the DMA subsystem cost.
	DMA int64 `json:"dma"`
	// Total is the sum of the components — the Pareto axis.
	Total int64 `json:"total"`
}

// Cost evaluates the fabric cost model on the configuration. The config
// should Validate; Cost itself never panics on a merely expensive shape.
func (c *Config) Cost() Cost {
	var x Cost
	inst := int64(1) // group instances at the current level, machine-wide
	for l, ls := range c.Levels {
		inst *= int64(ls.Groups)
		if l == 0 && (c.Ring || c.Linear) {
			// Restricted neighborhood: count each group's true listening
			// degree (linear arrays are asymmetric at the ends).
			for a := 0; a < ls.Groups; a++ {
				deg := int64(0)
				for b := 0; b < ls.Groups; b++ {
					if a != b && c.Connected(a, b) {
						deg++
					}
				}
				x.Crosspoints += int64(ls.InWires) * deg * int64(ls.OutWires)
			}
			continue
		}
		x.Crosspoints += inst * int64(ls.InWires) * int64(ls.Groups-1) * int64(ls.OutWires)
	}
	x.CNs = int64(c.TotalCNs()) * (costCN + costCNPort*int64(c.CNInPorts+c.CNOutPorts))
	x.Mem = int64(c.NumMemCNs()) * costMemCN
	x.DMA = int64(c.DMAPorts) * costDMAPort
	x.Total = x.Crosspoints + x.CNs + x.Mem + x.DMA
	return x
}
