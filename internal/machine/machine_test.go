package machine

import (
	"strings"
	"testing"
)

func TestDSPFabric64Shape(t *testing.T) {
	c := DSPFabric64(8, 8, 8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TotalCNs() != 64 {
		t.Errorf("TotalCNs = %d, want 64", c.TotalCNs())
	}
	if c.NumLevels() != 3 {
		t.Errorf("NumLevels = %d, want 3", c.NumLevels())
	}
	for lvl, want := range []int{16, 4, 1} {
		if got := c.CNsPerGroup(lvl); got != want {
			t.Errorf("CNsPerGroup(%d) = %d, want %d", lvl, got, want)
		}
	}
	if c.CNInPorts != 2 || c.CNOutPorts != 1 {
		t.Errorf("CN ports = %d/%d, want 2/1", c.CNInPorts, c.CNOutPorts)
	}
	if c.DMAPorts != 8 {
		t.Errorf("DMAPorts = %d, want 8", c.DMAPorts)
	}
}

func TestParallelShortestPaths(t *testing.T) {
	// §4: two CNs across the level-0 switch have K²M²N² parallel shortest
	// paths; with N=M=K=8 that is 8^6 = 262144.
	c := DSPFabric64(8, 8, 8)
	if got := c.ParallelShortestPaths(); got != 262144 {
		t.Errorf("ParallelShortestPaths = %d, want 262144", got)
	}
	c2 := DSPFabric64(4, 2, 2)
	if got := c2.ParallelShortestPaths(); got != 16*4*4 {
		t.Errorf("ParallelShortestPaths = %d, want %d", got, 16*4*4)
	}
}

func TestRCPShape(t *testing.T) {
	c := RCP(8, 2, 2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TotalCNs() != 8 || c.NumLevels() != 1 {
		t.Errorf("RCP shape: %d CNs, %d levels", c.TotalCNs(), c.NumLevels())
	}
	if !c.Ring {
		t.Error("RCP should be a ring")
	}
}

func TestRingConnectivity(t *testing.T) {
	c := RCP(8, 2, 2)
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {0, 3, false}, {0, 4, false},
		{0, 7, true}, {0, 6, true}, {0, 5, false}, {3, 3, false},
	}
	for _, tc := range cases {
		if got := c.Connected(tc.a, tc.b); got != tc.want {
			t.Errorf("Connected(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAllToAllConnectivity(t *testing.T) {
	c := DSPFabric64(8, 8, 8)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			want := a != b
			if got := c.Connected(a, b); got != want {
				t.Errorf("Connected(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]*Config{
		"no-levels":    {Name: "x"},
		"one-group":    {Name: "x", Levels: []LevelSpec{{Groups: 1, InWires: 1, OutWires: 1}}, CNInPorts: 1, CNOutPorts: 1},
		"zero-wires":   {Name: "x", Levels: []LevelSpec{{Groups: 4, InWires: 0, OutWires: 1}}, CNInPorts: 1, CNOutPorts: 1},
		"zero-ports":   {Name: "x", Levels: []LevelSpec{{Groups: 4, InWires: 1, OutWires: 1}}},
		"negative-dma": {Name: "x", Levels: []LevelSpec{{Groups: 4, InWires: 1, OutWires: 1}}, CNInPorts: 1, CNOutPorts: 1, DMAPorts: -1},
		"bad-ring":     {Name: "x", Levels: []LevelSpec{{Groups: 4, InWires: 1, OutWires: 1}}, CNInPorts: 1, CNOutPorts: 1, Ring: true, RingNeighbors: 4},
	}
	for name, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", name)
		}
	}
}

func TestCNsPerGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DSPFabric64(8, 8, 8).CNsPerGroup(5)
}

func TestString(t *testing.T) {
	s := DSPFabric64(8, 8, 8).String()
	if !strings.Contains(s, "64 CNs") || !strings.Contains(s, "3 levels") {
		t.Errorf("String() = %q", s)
	}
}

func TestHierarchical(t *testing.T) {
	c := Hierarchical([]int{4, 4, 4, 4}, []int{8, 8, 8, 8})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TotalCNs() != 256 || c.NumLevels() != 4 {
		t.Errorf("shape: %d CNs, %d levels", c.TotalCNs(), c.NumLevels())
	}
	if got := c.CNsPerGroup(0); got != 64 {
		t.Errorf("CNsPerGroup(0) = %d", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched lengths accepted")
			}
		}()
		Hierarchical([]int{4}, []int{8, 8})
	}()
}

func TestMemCapableInPackage(t *testing.T) {
	het := RCPHetero(8, 2, 2, []int{1, 5})
	if het.NumMemCNs() != 2 || !het.MemCapable(5) || het.MemCapable(0) {
		t.Error("hetero capability wrong")
	}
	if err := het.Validate(); err != nil {
		t.Fatal(err)
	}
	homo := DSPFabric64(8, 8, 8)
	if homo.NumMemCNs() != 64 || !homo.MemCapable(63) {
		t.Error("homogeneous capability wrong")
	}
}

func TestIssueWidthPerGroup(t *testing.T) {
	c := DSPFabric64(8, 8, 8)
	for lvl, want := range []int{16, 4, 1} {
		if got := c.IssueWidthPerGroup(lvl); got != want {
			t.Errorf("IssueWidthPerGroup(%d) = %d, want %d", lvl, got, want)
		}
	}
}

func TestLinearArrayConnectivity(t *testing.T) {
	c := LinearArray(8, 2, 2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {0, 3, false},
		{0, 7, false}, {0, 6, false}, // no wraparound
		{7, 5, true}, {4, 4, false},
	}
	for _, tc := range cases {
		if got := c.Connected(tc.a, tc.b); got != tc.want {
			t.Errorf("Connected(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
