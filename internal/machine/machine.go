// Package machine describes the target architectures of the paper (§2):
// the DSPFabric hierarchical reconfigurable coprocessor and the RCP
// reconfigurable ring, at the level of detail the cluster-assignment flow
// needs — the cluster hierarchy, the per-level interconnect bandwidths
// (MUX capacities N, M, K), the computation-node port budget and the
// programmable DMA.
//
// Two views exist of the same hardware. The *pattern* view (package pg)
// abstracts each level as a graph of clusters with potential communication
// arcs; this package is the *machine model* view that the Mapper commits
// copies onto and the simulator executes: levels, groups, wires.
package machine

import (
	"fmt"
)

// LevelSpec describes one level of the interconnection hierarchy: how many
// sibling groups a parent splits into and how many input/output wires each
// group owns at this level. Output wires can be broadcast to several
// destinations; each input wire listens to exactly one source (§2.2).
type LevelSpec struct {
	Groups   int // sibling clusters at this level (4 at every DSPFabric level)
	InWires  int // input wires per group: the MUX capacity (N, M or K)
	OutWires int // output wires per group (equal to InWires on DSPFabric)
}

// Config is a complete machine description.
type Config struct {
	Name string
	// Levels, outermost (level 0) first. The leaf level's groups are the
	// computation nodes themselves.
	Levels []LevelSpec
	// CNInPorts and CNOutPorts bound each computation node's connections
	// to its leaf crossbar (2 and 1 on DSPFabric).
	CNInPorts  int
	CNOutPorts int
	// DMA subsystem (§2.2): number of simultaneously served requests,
	// FIFO depth, and serving latency in cycles.
	DMAPorts     int
	DMAFIFODepth int
	DMALatency   int
	// Ring is set for RCP-style flat machines: the potential-connection
	// neighborhood is a ring of the level-0 groups, each group reaching
	// RingNeighbors nearest groups, rather than all-to-all. Linear is the
	// open-ended variant (RaPiD / PipeRench-style linear arrays, §6):
	// same neighborhood but no wrap-around.
	Ring          bool
	Linear        bool
	RingNeighbors int
	// MemCNs, when non-nil, lists the computation nodes able to issue
	// memory instructions (§2.1: RCP is heterogeneous — only some PEs
	// access memory). Nil means every CN is memory-capable (DSPFabric's
	// homogeneous ALU+AG nodes, §4).
	MemCNs []int
}

// DSPFabric64 returns the 64-computation-node DSPFabric instance of
// Figure 2: four 16-issue cluster sets exchanging data through an N-wire
// switch, each set split into four 4-issue sub-clusters joined by M-wire
// MUXes, each sub-cluster a crossbar over four single-issue CNs fed by K
// external wires. The paper's best results use N = M = K = 8.
func DSPFabric64(n, m, k int) *Config {
	return &Config{
		Name: fmt.Sprintf("dspfabric64-n%d-m%d-k%d", n, m, k),
		Levels: []LevelSpec{
			{Groups: 4, InWires: n, OutWires: n},
			{Groups: 4, InWires: m, OutWires: m},
			{Groups: 4, InWires: k, OutWires: k},
		},
		CNInPorts:    2,
		CNOutPorts:   1,
		DMAPorts:     8,
		DMAFIFODepth: 8,
		DMALatency:   2,
	}
}

// MemCapable reports whether computation node cn may issue memory
// instructions.
func (c *Config) MemCapable(cn int) bool {
	if c.MemCNs == nil {
		return true
	}
	for _, m := range c.MemCNs {
		if m == cn {
			return true
		}
	}
	return false
}

// NumMemCNs returns the number of memory-capable computation nodes.
func (c *Config) NumMemCNs() int {
	if c.MemCNs == nil {
		return c.TotalCNs()
	}
	return len(c.MemCNs)
}

// RCPHetero returns an RCP ring where only memCNs may issue memory
// instructions, modeling §2.1's heterogeneous machine.
func RCPHetero(size, neighbors, inPorts int, memCNs []int) *Config {
	c := RCP(size, neighbors, inPorts)
	c.Name = fmt.Sprintf("rcp%d-nb%d-k%d-het%d", size, neighbors, inPorts, len(memCNs))
	c.MemCNs = append(make([]int, 0, len(memCNs)), memCNs...)
	return c
}

// LinearArray returns a flat machine whose clusters form an open linear
// array (each reaching neighbors clusters to either side, no wraparound),
// the topology family of RaPiD and PipeRench (§6), with inPorts
// configurable input ports per cluster.
func LinearArray(size, neighbors, inPorts int) *Config {
	c := RCP(size, neighbors, inPorts)
	c.Name = fmt.Sprintf("linear%d-nb%d-k%d", size, neighbors, inPorts)
	c.Linear = true
	return c
}

// RCP returns a flat reconfigurable ring in the style of Figure 1: size
// clusters, each potentially connected to its neighbors nearest neighbors
// on both sides, with only inPorts input ports configurable per cluster.
func RCP(size, neighbors, inPorts int) *Config {
	return &Config{
		Name:          fmt.Sprintf("rcp%d-nb%d-k%d", size, neighbors, inPorts),
		Levels:        []LevelSpec{{Groups: size, InWires: inPorts, OutWires: size}},
		CNInPorts:     inPorts,
		CNOutPorts:    size,
		DMAPorts:      8,
		DMAFIFODepth:  8,
		DMALatency:    2,
		Ring:          true,
		RingNeighbors: neighbors,
	}
}

// Validate checks the configuration is well formed.
func (c *Config) Validate() error {
	if len(c.Levels) == 0 {
		return fmt.Errorf("machine %q: no levels", c.Name)
	}
	for i, l := range c.Levels {
		if l.Groups < 2 {
			return fmt.Errorf("machine %q: level %d: need >= 2 groups, have %d", c.Name, i, l.Groups)
		}
		if l.InWires < 1 || l.OutWires < 1 {
			return fmt.Errorf("machine %q: level %d: wire counts must be positive", c.Name, i)
		}
	}
	if c.CNInPorts < 1 || c.CNOutPorts < 1 {
		return fmt.Errorf("machine %q: CN port counts must be positive", c.Name)
	}
	if c.DMAPorts < 0 || c.DMAFIFODepth < 0 || c.DMALatency < 0 {
		return fmt.Errorf("machine %q: negative DMA parameter", c.Name)
	}
	if c.Ring && (c.RingNeighbors < 1 || c.RingNeighbors >= c.Levels[0].Groups) {
		return fmt.Errorf("machine %q: ring neighborhood %d out of range", c.Name, c.RingNeighbors)
	}
	if c.MemCNs != nil {
		if len(c.MemCNs) == 0 {
			return fmt.Errorf("machine %q: no memory-capable CN", c.Name)
		}
		for _, m := range c.MemCNs {
			if m < 0 || m >= c.TotalCNs() {
				return fmt.Errorf("machine %q: memory CN %d out of range", c.Name, m)
			}
		}
	}
	return nil
}

// NumLevels returns the depth of the hierarchy.
func (c *Config) NumLevels() int { return len(c.Levels) }

// TotalCNs returns the number of computation nodes in the machine.
func (c *Config) TotalCNs() int {
	t := 1
	for _, l := range c.Levels {
		t *= l.Groups
	}
	return t
}

// CNsPerGroup returns how many computation nodes one group at the given
// level contains (16, 4, 1 for the three DSPFabric levels).
func (c *Config) CNsPerGroup(level int) int {
	if level < 0 || level >= len(c.Levels) {
		panic(fmt.Sprintf("machine: CNsPerGroup: bad level %d", level))
	}
	t := 1
	for _, l := range c.Levels[level+1:] {
		t *= l.Groups
	}
	return t
}

// IssueWidthPerGroup equals CNsPerGroup: every CN is single-issue.
func (c *Config) IssueWidthPerGroup(level int) int { return c.CNsPerGroup(level) }

// ParallelShortestPaths returns the number of parallel shortest paths
// between two CNs on opposite sides of the level-0 switch — the K²M²N²
// growth the paper cites (§4) as the reason a flat K64 abstraction is
// intractable.
func (c *Config) ParallelShortestPaths() int {
	p := 1
	for _, l := range c.Levels {
		p *= l.InWires * l.InWires
	}
	return p
}

// Connected reports whether level-0 groups a and b have a potential
// connection b→a (a can listen to b). All-to-all unless Ring is set.
func (c *Config) Connected(a, b int) bool {
	g := c.Levels[0].Groups
	if a < 0 || a >= g || b < 0 || b >= g {
		panic(fmt.Sprintf("machine: Connected: bad groups %d,%d", a, b))
	}
	if a == b {
		return false
	}
	if !c.Ring && !c.Linear {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	if c.Ring && !c.Linear {
		if w := g - d; w < d {
			d = w
		}
	}
	return d <= c.RingNeighbors
}

// String returns a one-line summary.
func (c *Config) String() string {
	return fmt.Sprintf("%s: %d CNs, %d levels, DMA %d ports", c.Name, c.TotalCNs(), c.NumLevels(), c.DMAPorts)
}

// Hierarchical builds a DSPFabric-style machine with arbitrary depth: one
// LevelSpec per entry of groups/wires (equal lengths), CN ports and DMA
// as on DSPFabric. It realizes the paper's scalability argument (§1, §7:
// the decomposition "easily scales with the architecture"): a 4-level
// instance with groups {4,4,4,4} is a 256-CN fabric.
func Hierarchical(groups, wires []int) *Config {
	if len(groups) != len(wires) || len(groups) == 0 {
		panic("machine: Hierarchical: groups and wires must be equal-length and non-empty")
	}
	c := &Config{
		Name:         "hier",
		CNInPorts:    2,
		CNOutPorts:   1,
		DMAPorts:     8,
		DMAFIFODepth: 8,
		DMALatency:   2,
	}
	for i := range groups {
		c.Levels = append(c.Levels, LevelSpec{Groups: groups[i], InWires: wires[i], OutWires: wires[i]})
		c.Name += fmt.Sprintf("-%dx%d", groups[i], wires[i])
	}
	return c
}
