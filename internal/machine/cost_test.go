package machine

import "testing"

func TestCostBreakdownSums(t *testing.T) {
	for _, mc := range []*Config{DSPFabric64(8, 8, 8), RCP(8, 2, 2), LinearArray(8, 2, 2)} {
		c := mc.Cost()
		if c.Total != c.Crosspoints+c.CNs+c.Mem+c.DMA {
			t.Errorf("%s: total %d != sum of parts %+v", mc.Name, c.Total, c)
		}
		if c.Crosspoints <= 0 || c.CNs <= 0 {
			t.Errorf("%s: non-positive interconnect/CN cost: %+v", mc.Name, c)
		}
	}
}

// TestCostMonotonicity: widening any capacity axis must never cheapen
// the fabric — the property that makes the Pareto front meaningful.
func TestCostMonotonicity(t *testing.T) {
	base := DSPFabric64(8, 8, 8).Cost().Total
	for _, narrower := range []*Config{
		DSPFabric64(6, 8, 8), DSPFabric64(8, 6, 8), DSPFabric64(8, 8, 6),
	} {
		if c := narrower.Cost().Total; c >= base {
			t.Errorf("%s costs %d, not below full fabric %d", narrower.Name, c, base)
		}
	}
	if RCP(8, 2, 2).Cost().Total >= RCP(8, 3, 2).Cost().Total {
		t.Error("widening the ring neighborhood did not raise cost")
	}
	if RCP(8, 2, 2).Cost().Total >= RCP(8, 2, 3).Cost().Total {
		t.Error("adding cluster ports did not raise cost")
	}
}

// TestCostMemAndPorts: the memory premium follows the heterogeneous
// MemCNs set, and CN port budgets price in.
func TestCostMemAndPorts(t *testing.T) {
	all := DSPFabric64(8, 8, 8)
	some := DSPFabric64(8, 8, 8)
	some.MemCNs = []int{0, 4}
	ca, cs := all.Cost(), some.Cost()
	if cs.Mem >= ca.Mem {
		t.Errorf("2 mem CNs (%d) not cheaper than all 64 (%d)", cs.Mem, ca.Mem)
	}
	if cs.Mem != 2*costMemCN {
		t.Errorf("mem premium = %d, want %d", cs.Mem, 2*costMemCN)
	}
	wide := DSPFabric64(8, 8, 8)
	wide.CNInPorts, wide.CNOutPorts = 3, 2
	if wide.Cost().CNs <= ca.CNs {
		t.Error("extra CN ports did not raise CN cost")
	}
}
