# Tier-1 gate: `make check` is what CI (and every PR) must keep green.
# It formats-checks, vets, builds and tests the whole module, then
# re-runs the concurrent packages (the fork-join helper and the
# compilation service) under the race detector.

GO ?= go

.PHONY: check fmt vet build test race daemon

check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par/... ./internal/service/...

# Convenience: run the compilation daemon locally.
daemon:
	$(GO) run ./cmd/hcad -addr :8080
