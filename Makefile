# Tier-1 gate: `make check` is what CI (and every PR) must keep green.
# It formats-checks, vets, lints (the custom hcalint analyzers), builds
# and tests the whole module, then re-runs the concurrent packages (the
# fork-join helper, the compilation service, the solver core/mapper and
# the delta-engine packages whose flows cross goroutines) under the
# race detector.

GO ?= go

# Output file for `make bench`; override per run to grow the scorecard
# trajectory: `make bench OUT=BENCH_10.json`.
OUT ?= BENCH_10.json

# Commit recorded in the scorecard's provenance block; override when
# benchmarking a tree whose HEAD is not the commit under test.
GIT_SHA ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)

.PHONY: check fmt vet lint lint-json build test race race-stress bench bench-smoke daemon

check: fmt vet lint build test race race-stress

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# hcalint enforces the repo's own invariants (ctx-first API, zero-alloc
# hot paths, journal balance, span End, typed validation errors, flow
# lifecycle, shared-capture discipline, memo/cache-key discipline). See
# README "Static analysis".
lint:
	$(GO) run ./cmd/hcalint ./...

# Same findings as machine-readable JSON (an array of
# {file, line, col, analyzer, message}); CI validates the shape with jq.
lint-json:
	$(GO) run ./cmd/hcalint -json ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector sweep over every package whose flows cross goroutines.
race:
	$(GO) test -race ./internal/par/... ./internal/service/... \
		./internal/service/middleware/... ./internal/store/... \
		./internal/see/... ./internal/pg/... ./internal/driver/... \
		./internal/trace/... ./internal/core/... ./internal/mapper/... \
		./internal/dse/...

# Named stress tests under the race detector, run twice each. The
# pooled-scratch stress forces the len(states) < par.Width() path where
# concurrent workers CopyFrom overlapping pool slots; the parallel
# expansion stress hammers the frontier fan-out; the crash-recovery
# test replays orphaned tmp files, torn records and quarantine-and-heal
# — the invariant the whole persistence layer hangs off; the portfolio
# stress runs concurrent portfolio solves with mid-race cancellation,
# the path where the beam and exact legs' cancel/incumbent protocol
# could leak goroutines or race on the shared memo. The package-wide
# sweep only hits these interleavings incidentally.
race-stress:
	$(GO) test -race -run TestChunkedScratchStress -count=2 ./internal/see/
	$(GO) test -race -run TestParallelExpansionStress -count=2 ./internal/see/
	$(GO) test -race -run TestStoreCrashRecovery -count=2 ./internal/store/
	$(GO) test -race -run TestPortfolioStress -count=2 ./internal/core/

# Regenerate the performance scorecard (delta SEE vs clone baseline,
# journal microcosts, end-to-end Table-1 and feedback wall time with the
# dedup+memo ablation). See README's Performance section for how to
# read it.
bench:
	$(GO) run ./cmd/perfbench -out $(OUT) -git-sha $(GIT_SHA)

# CI smoke: the same harness restricted to fir2dim, output to stdout —
# including a 4-point DSE sweep (k ∈ {8,6,4,2}) through the shared-memo
# and per-point ablations. Catches benchmark-path rot (API drift,
# panics, pathological slowdowns) without paying for the full Table-1
# sweep on every push.
bench-smoke:
	$(GO) run ./cmd/perfbench -quick -out - -git-sha $(GIT_SHA)

# Convenience: run the compilation daemon locally.
daemon:
	$(GO) run ./cmd/hcad -addr :8080
