# Tier-1 gate: `make check` is what CI (and every PR) must keep green.
# It formats-checks, vets, builds and tests the whole module, then
# re-runs the concurrent packages (the fork-join helper, the compilation
# service, and the delta-engine packages whose flows cross goroutines)
# under the race detector.

GO ?= go

.PHONY: check fmt vet build test race bench daemon

check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par/... ./internal/service/... \
		./internal/see/... ./internal/pg/... ./internal/driver/... \
		./internal/trace/...

# Regenerate the performance scorecard (delta SEE vs clone baseline,
# journal microcosts, end-to-end Table-1 wall time). See README's
# Performance section for how to read it.
bench:
	$(GO) run ./cmd/perfbench -out BENCH_2.json

# Convenience: run the compilation daemon locally.
daemon:
	$(GO) run ./cmd/hcad -addr :8080
