# Tier-1 gate: `make check` is what CI (and every PR) must keep green.
# It formats-checks, vets, lints (the custom hcalint analyzers), builds
# and tests the whole module, then re-runs the concurrent packages (the
# fork-join helper, the compilation service, the solver core/mapper and
# the delta-engine packages whose flows cross goroutines) under the
# race detector.

GO ?= go

# Output file for `make bench`; override per run to grow the scorecard
# trajectory: `make bench OUT=BENCH_5.json`.
OUT ?= BENCH_4.json

.PHONY: check fmt vet lint build test race bench daemon

check: fmt vet lint build test race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# hcalint enforces the repo's own invariants (ctx-first API, zero-alloc
# hot paths, journal balance, span End, typed validation errors). See
# README "Static analysis".
lint:
	$(GO) run ./cmd/hcalint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par/... ./internal/service/... \
		./internal/see/... ./internal/pg/... ./internal/driver/... \
		./internal/trace/... ./internal/core/... ./internal/mapper/...

# Regenerate the performance scorecard (delta SEE vs clone baseline,
# journal microcosts, end-to-end Table-1 wall time). See README's
# Performance section for how to read it.
bench:
	$(GO) run ./cmd/perfbench -out $(OUT)

# Convenience: run the compilation daemon locally.
daemon:
	$(GO) run ./cmd/hcad -addr :8080
